package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"xqgo/internal/leakcheck"
)

func TestIsXMLContentType(t *testing.T) {
	cases := []struct {
		ct   string
		want bool
	}{
		{"application/xml", true},
		{"APPLICATION/XML", true},
		{"Text/Xml", true},
		{"text/xml; charset=utf-8", true},
		{"application/xml;charset=ISO-8859-1", true},
		{"application/soap+xml", true},
		{"image/svg+xml; charset=utf-8", true},
		{"application/ATOM+XML", true},

		{"application/xmlfoo", false}, // the old prefix test accepted this
		{"text/xml2", false},
		{"application/json", false},
		{"text/plain", false},
		{"xml", false},
		{"", false},
		{";;;", false},
	}
	for _, c := range cases {
		if got := isXMLContentType(c.ct); got != c.want {
			t.Errorf("isXMLContentType(%q) = %v, want %v", c.ct, got, c.want)
		}
	}
}

// TestStreamQueryContentTypeVariants: parameterized and suffix XML content
// types route POST /query into streamed ingestion just like the bare types.
func TestStreamQueryContentTypeVariants(t *testing.T) {
	s := newTestService(t, Config{})
	h := NewHTTPHandler(s)
	for _, ct := range []string{"Application/XML; charset=utf-8", "application/soap+xml"} {
		req := httptest.NewRequest("POST", "/query?query=count(/bib/book)", strings.NewReader(bibXML))
		req.Header.Set("Content-Type", ct)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != 200 || rec.Body.String() != "3" {
			t.Errorf("Content-Type %q: code %d body %q, want 200 %q", ct, rec.Code, rec.Body.String(), "3")
		}
	}
}

type sseEvt struct {
	name string
	data string
}

func parseSSE(t *testing.T, body string) []sseEvt {
	t.Helper()
	var evts []sseEvt
	var cur sseEvt
	for _, line := range strings.Split(body, "\n") {
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if cur.name != "" {
				evts = append(evts, cur)
				cur = sseEvt{}
			}
		}
	}
	return evts
}

func TestSubscribeSSE(t *testing.T) {
	leakcheck.Check(t)
	s := newTestService(t, Config{})
	h := NewHTTPHandler(s)

	req := httptest.NewRequest("POST",
		"/subscribe?query="+strings.ReplaceAll("/bib/book/title", "/", "%2F")+
			"&query=count(%2Fbib%2Fbook)", strings.NewReader(bibXML))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("POST /subscribe = %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q, want text/event-stream", ct)
	}

	evts := parseSSE(t, rec.Body.String())
	if len(evts) == 0 {
		t.Fatalf("no SSE events in %q", rec.Body.String())
	}
	if evts[0].name != "subscribed" {
		t.Fatalf("first event = %q, want subscribed", evts[0].name)
	}
	var infos []subInfo
	if err := json.Unmarshal([]byte(evts[0].data), &infos); err != nil {
		t.Fatalf("subscribed payload: %v", err)
	}
	if len(infos) != 2 || infos[0].Class != "fully-streamable" || infos[1].Class != "store-required" {
		t.Fatalf("subscribed = %+v", infos)
	}
	if infos[1].Reason == "" {
		t.Error("store-required subscription should carry a reason")
	}

	var titles, counts []subResult
	for _, e := range evts {
		if e.name != "result" {
			continue
		}
		var r subResult
		if err := json.Unmarshal([]byte(e.data), &r); err != nil {
			t.Fatalf("result payload %q: %v", e.data, err)
		}
		if r.Sub == 0 {
			titles = append(titles, r)
		} else {
			counts = append(counts, r)
		}
	}
	if len(titles) != 3 {
		t.Fatalf("title results = %d, want 3 (%v)", len(titles), titles)
	}
	for i, r := range titles {
		if r.Seq != int64(i+1) || !strings.HasPrefix(r.XML, "<title>") {
			t.Errorf("title result %d = %+v", i, r)
		}
	}
	if len(counts) != 1 || counts[0].XML != "3" {
		t.Fatalf("fallback results = %v, want one count of 3", counts)
	}

	last := evts[len(evts)-1]
	if last.name != "end" {
		t.Fatalf("last event = %q, want end", last.name)
	}
	var ends []subEnd
	if err := json.Unmarshal([]byte(last.data), &ends); err != nil {
		t.Fatalf("end payload: %v", err)
	}
	if len(ends) != 2 || ends[0].Results != 3 || !ends[1].FellBack || ends[1].Results != 1 {
		t.Fatalf("end stats = %+v", ends)
	}

	// The pub/sub accounting reaches /stats and /metrics.
	st := s.Stats()
	sub := st.Subscriptions
	if sub.Feeds != 1 || sub.Registered != 2 || sub.Results != 4 || sub.Fallbacks != 1 || sub.ActiveFeeds != 0 {
		t.Errorf("subscription totals = %+v", sub)
	}
	if st.Engine.StreamWindows == 0 || st.Engine.StreamResults == 0 {
		t.Errorf("engine stream counters empty: %+v", st.Engine)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	validatePromText(t, body)
	for _, want := range []string{
		"xqd_subscriber_feeds_total 1",
		"xqd_subscriptions_total 2",
		"xqd_subscription_results_total 4",
		"xqd_subscription_fallbacks_total 1",
		"xqd_subscriber_feeds_active 0",
		"xqd_engine_stream_windows_total",
		"xqd_engine_stream_buffer_peak_bytes",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestSubscribeRejections(t *testing.T) {
	s := newTestService(t, Config{MaxSubscriptions: 1})
	h := NewHTTPHandler(s)

	// No query parameter.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/subscribe", strings.NewReader(bibXML)))
	if rec.Code != 400 {
		t.Errorf("no query: %d, want 400", rec.Code)
	}

	// Over the per-request subscription cap.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/subscribe?query=1&query=2", strings.NewReader(bibXML)))
	if rec.Code != 400 {
		t.Errorf("over cap: %d, want 400", rec.Code)
	}

	// Malformed query compiles to a clean 400, not an SSE stream.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/subscribe?query=%2Fbib%2F%2F%2F", strings.NewReader(bibXML)))
	if rec.Code != 400 {
		t.Errorf("bad query: %d, want 400", rec.Code)
	}
	if got := s.Stats().Subscriptions.Feeds; got != 0 {
		t.Errorf("rejected requests counted as feeds: %d", got)
	}
}

// sseRecorder is a concurrency-safe ResponseWriter for driving the
// subscribe handler from another goroutine.
type sseRecorder struct {
	mu     sync.Mutex
	buf    bytes.Buffer
	header http.Header
	code   int
}

func (r *sseRecorder) Header() http.Header {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.header == nil {
		r.header = make(http.Header)
	}
	return r.header
}

func (r *sseRecorder) WriteHeader(code int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.code = code
}

func (r *sseRecorder) Write(p []byte) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.buf.Write(p)
}

func (r *sseRecorder) Flush() {}

func (r *sseRecorder) body() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.buf.String()
}

func (r *sseRecorder) waitFor(t *testing.T, substr string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if strings.Contains(r.body(), substr) {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %q in %q", substr, r.body())
}

// TestSubscribeShutdown: Service.Shutdown ends a live feed — even one whose
// client is sending nothing — with a terminal goodbye event, and new
// subscribe requests are rejected with 503.
func TestSubscribeShutdown(t *testing.T) {
	leakcheck.Check(t)
	s := newTestService(t, Config{})
	h := NewHTTPHandler(s)

	pr, pw := io.Pipe()
	defer pw.Close()
	rec := &sseRecorder{}
	done := make(chan struct{})
	go func() {
		defer close(done)
		h.ServeHTTP(rec, httptest.NewRequest("POST", "/subscribe?query=%2Fbib%2Fbook%2Ftitle", pr))
	}()

	// Partial feed: one complete book, document still open, then silence.
	if _, err := pw.Write([]byte("<bib><book><title>live</title></book>")); err != nil {
		t.Fatal(err)
	}
	rec.waitFor(t, "event: result")

	s.Shutdown()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("handler did not return after Shutdown")
	}
	evts := parseSSE(t, rec.body())
	if len(evts) == 0 || evts[len(evts)-1].name != "goodbye" {
		t.Fatalf("last event = %v, want goodbye (events: %v)", evts, evts)
	}

	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, httptest.NewRequest("POST", "/subscribe?query=1", strings.NewReader(bibXML)))
	if rec2.Code != 503 {
		t.Errorf("subscribe after shutdown = %d, want 503", rec2.Code)
	}
}

// TestServiceStreamModeRequest: a Request with StreamMode runs a streamable
// query on the event-driven evaluator (no document nodes are built) and the
// stream counters land in the aggregated engine totals.
func TestServiceStreamModeRequest(t *testing.T) {
	s := New(Config{})
	var out strings.Builder
	if _, _, err := s.Execute(context.Background(), Request{
		Query:      `/bib/book/title`,
		Body:       strings.NewReader(bibXML),
		StreamMode: true,
	}, &out); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(out.String(), "<title>"); got != 3 {
		t.Fatalf("stream-mode result = %q", out.String())
	}
	st := s.Stats()
	if st.Engine.StreamWindows == 0 || st.Engine.StreamResults != 3 {
		t.Errorf("engine stream counters = %+v", st.Engine)
	}
	if st.Engine.DocNodesBuilt != 0 {
		t.Errorf("stream mode materialized %d nodes", st.Engine.DocNodesBuilt)
	}

	// A store-required query under StreamMode falls back transparently.
	out.Reset()
	if _, _, err := s.Execute(context.Background(), Request{
		Query:      `count(/bib/book)`,
		Body:       strings.NewReader(bibXML),
		StreamMode: true,
	}, &out); err != nil {
		t.Fatal(err)
	}
	if out.String() != "3" {
		t.Fatalf("fallback result = %q", out.String())
	}
	if got := s.Stats().Engine.StreamFallbacks; got != 1 {
		t.Errorf("stream fallbacks = %d, want 1", got)
	}
}
