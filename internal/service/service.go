package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"xqgo"
	"xqgo/internal/limits"
	"xqgo/internal/trace"
)

// Config tunes the service.
type Config struct {
	// Workers bounds concurrent query executions (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds requests waiting for a worker before the service
	// starts rejecting with ErrSaturated (default 64).
	QueueDepth int
	// PlanCacheSize bounds the compiled-plan LRU (default 256 plans).
	PlanCacheSize int
	// DefaultTimeout applies to requests that set none (default 10s).
	DefaultTimeout time.Duration
	// MaxResultBytes caps the serialized result size per request
	// (default 32 MiB; negative = unlimited).
	MaxResultBytes int64
	// Options are the compile options applied to every query. The join
	// strategy defaults to cost-based selection (StrategyAuto): catalog
	// documents get shared structural-join indexes seeded into every
	// request, so the planner prices them as free and switches descendant
	// chains to joins whenever the estimates favor them. Set
	// Options.Strategy to pin one engine (ForceNavigation disables index
	// seeding entirely).
	Options xqgo.Options
	// ParseOptions apply when registering documents.
	ParseOptions xqgo.ParseOptions
	// SlowQueryThreshold: completed requests slower than this are recorded
	// in the slow-query log with their full profile (default 250ms;
	// negative disables the log).
	SlowQueryThreshold time.Duration
	// SlowLogSize bounds the slow-query ring buffer (default 64 entries).
	SlowLogSize int
	// DisableProfiling turns off the always-on counters-only profile
	// attached to every request (explain=1 requests still profile). With it
	// set, /metrics engine counters stay zero and slow-log entries carry no
	// profile.
	DisableProfiling bool
	// MaxSubscriptions bounds the number of continuous queries one
	// POST /subscribe request may register (default 16).
	MaxSubscriptions int
	// MaxSubscribers bounds concurrent subscriber feeds; beyond it new
	// /subscribe requests are rejected with 503 (default 64). Subscriber
	// feeds do not occupy executor worker slots — they are long-lived and
	// would starve the query pool.
	MaxSubscribers int
	// QueryWorkers sets the morsel-parallelism target per query: up to this
	// many workers (including the request's own goroutine) cooperate on
	// large scans, joins and FLWOR pipelines of one execution. 0 disables
	// intra-query parallelism (the default); negative means GOMAXPROCS.
	// Extra workers are leased round by round from the executor's idle
	// request slots, so a heavy query soaks up spare capacity but a busy
	// service automatically degrades to one worker per query, and nothing
	// is ever granted while requests wait in the admission queue.
	QueryWorkers int
	// DisableTracing turns off the per-request span capture that feeds
	// GET /traces, slow-log trace links and /metrics exemplars. Requests
	// carrying their own Request.Trace are still honored.
	DisableTracing bool
	// TraceRingSize bounds the completed-trace ring served by GET /traces
	// (default 256 entries).
	TraceRingSize int
	// MaxQueryBytes caps the engine-tracked bytes one request may hold
	// (store growth, batch pools, window buffers, materialized results);
	// overage fails that query with a structured XQGO0001 error. 0 disables
	// the per-query cap.
	MaxQueryBytes int64
	// ProcessSoftLimitBytes is the process-wide soft memory cap: it is
	// wired into the Go runtime's soft memory limit
	// (debug.SetMemoryLimit), and while the tracked bytes of running
	// queries sit near it, new work is rejected with 503 before executing.
	// 0 disables the cap.
	ProcessSoftLimitBytes int64
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 0
	}
	if c.PlanCacheSize <= 0 {
		c.PlanCacheSize = 256
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 10 * time.Second
	}
	if c.MaxResultBytes == 0 {
		c.MaxResultBytes = 32 << 20
	}
	if c.SlowQueryThreshold == 0 {
		c.SlowQueryThreshold = 250 * time.Millisecond
	}
	if c.SlowLogSize <= 0 {
		c.SlowLogSize = 64
	}
	if c.MaxSubscriptions <= 0 {
		c.MaxSubscriptions = 16
	}
	if c.MaxSubscribers <= 0 {
		c.MaxSubscribers = 64
	}
	if c.QueryWorkers < 0 {
		c.QueryWorkers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Service ties the catalog, plan cache and executor together: the
// concurrent XQuery serving layer.
type Service struct {
	cfg     Config
	Catalog *Catalog
	plans   *PlanCache
	exec    *Executor
	stats   *statsCore
	slow    *slowLog
	subs    *subCore
	traces  *trace.Store
	gov     *limits.Governor

	shutdown     chan struct{}
	shutdownOnce sync.Once
}

// New creates a service with the given configuration.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	if cfg.ProcessSoftLimitBytes > 0 {
		// The governor sheds admissions near the cap; the Go runtime's soft
		// limit makes the GC fight for the same budget in the meantime.
		debug.SetMemoryLimit(cfg.ProcessSoftLimitBytes)
	}
	return &Service{
		cfg:      cfg,
		Catalog:  NewCatalog(),
		plans:    NewPlanCache(cfg.PlanCacheSize),
		exec:     NewExecutor(cfg.Workers, cfg.QueueDepth),
		stats:    newStatsCore(),
		slow:     newSlowLog(cfg.SlowLogSize),
		subs:     &subCore{live: make(map[uint64]*liveFeed)},
		traces:   trace.NewStore(cfg.TraceRingSize),
		gov:      limits.NewGovernor(cfg.ProcessSoftLimitBytes),
		shutdown: make(chan struct{}),
	}
}

// Governor exposes the process-wide memory governor (tracked bytes, soft
// cap, shed count) for stats and tests.
func (s *Service) Governor() *limits.Governor { return s.gov }

// Traces returns the completed-trace ring snapshot, newest first, plus the
// lifetime count of captured traces.
func (s *Service) Traces() ([]trace.Data, uint64) {
	return s.traces.List(), s.traces.Total()
}

// TraceByID looks up one completed trace by its 32-hex-digit trace id.
func (s *Service) TraceByID(id string) (trace.Data, bool) {
	return s.traces.Get(id)
}

// Shutdown moves the service into draining mode: live subscriber feeds end
// promptly with a terminal "goodbye" SSE event and new /subscribe requests
// are rejected with 503. Regular queries are unaffected — http.Server's own
// Shutdown drains those. Idempotent, safe from any goroutine.
func (s *Service) Shutdown() {
	s.shutdownOnce.Do(func() { close(s.shutdown) })
}

// ShuttingDown reports whether Shutdown has been called.
func (s *Service) ShuttingDown() bool {
	select {
	case <-s.shutdown:
		return true
	default:
		return false
	}
}

// ErrShuttingDown rejects new subscriber feeds after Shutdown.
var ErrShuttingDown = errors.New("service: shutting down")

// Config returns the effective (defaulted) configuration.
func (s *Service) Config() Config { return s.cfg }

// RegisterDocument parses and registers a document in the catalog.
func (s *Service) RegisterDocument(name string, r io.Reader) (DocInfo, error) {
	e, err := s.Catalog.Register(name, r, s.cfg.ParseOptions)
	if err != nil {
		return DocInfo{}, &BadRequestError{Err: err}
	}
	return e.info(), nil
}

// Request describes one query execution.
type Request struct {
	// Query is the XQuery source text.
	Query string
	// ContextDoc, when non-empty, names a catalog document used as the
	// initial context item (so /a/b paths work without fn:doc).
	ContextDoc string
	// Body, when non-nil, is a streaming XML input for this request: it is
	// parsed incrementally while the query runs, projected down to the
	// subtrees the query's static path set can reach, and becomes the
	// context item when ContextDoc is empty. It also resolves under
	// fn:doc("request:body"). The reader is consumed by the execution.
	Body io.Reader
	// StreamMode asks for the event-driven streaming evaluator when the
	// query is streamable and Body is set (see xqgo.Context.WithStreamMode):
	// results are emitted as each window of the input completes and the
	// document is never materialized. Non-streamable plans silently fall
	// back to regular (lazy, projected) ingestion; results are identical.
	StreamMode bool
	// Vars binds external variables; values go through xqgo.ToSequence.
	Vars map[string]any
	// Timeout overrides Config.DefaultTimeout when positive.
	Timeout time.Duration
	// MaxResultBytes overrides Config.MaxResultBytes when non-zero
	// (negative = unlimited).
	MaxResultBytes int64
	// Explain requests a wall-clock-timed execution profile in the result
	// (per-operator statistics, engine counters, rewrite trace, plan).
	Explain bool
	// Trace, when non-nil, adopts the caller's trace (e.g. continued from an
	// incoming traceparent header) instead of the service-created one. The
	// completed trace still lands in the GET /traces ring.
	Trace *xqgo.Trace
	// MaxQueryBytes overrides Config.MaxQueryBytes when non-zero (negative
	// = no per-query cap; governor tracking still applies).
	MaxQueryBytes int64

	// chargeOutput marks requests whose serialized result is retained in
	// memory (the materialized Query path), so result bytes count against
	// the memory budget; streamed responses leave the process as they are
	// written and are not charged.
	chargeOutput bool
}

// Result is a materialized query response.
type Result struct {
	// XML is the serialized result sequence.
	XML string
	// Cached reports whether the plan came from the plan cache.
	Cached bool
	// Elapsed is the total service-side latency (queue wait included).
	Elapsed time.Duration
	// Profile is the execution profile; non-nil only when Request.Explain
	// was set.
	Profile *ExplainProfile
	// TraceID identifies the request's captured trace in GET /traces/{id}
	// (empty when tracing is disabled).
	TraceID string
}

// ExplainProfile is the JSON-ready execution profile attached to explain
// responses and slow-log entries.
type ExplainProfile struct {
	// Timed reports whether per-operator wall time was collected (explain
	// requests) or only counters (the always-on service default).
	Timed bool `json:"timed"`
	// Operators lists per-operator statistics, in plan order; only
	// operators that ran at least once appear.
	Operators []xqgo.OpProfile `json:"operators"`
	// Counters are the execution-wide engine counters.
	Counters xqgo.EngineCounters `json:"counters"`
	// Rewrites is the optimizer trace recorded when the plan was compiled.
	Rewrites []xqgo.RewriteEvent `json:"rewrites,omitempty"`
	// RuleFires counts optimizer rule applications by rule name.
	RuleFires map[string]int `json:"ruleFires,omitempty"`
	// Plan is the optimized expression tree rendering.
	Plan string `json:"plan,omitempty"`
	// Strategy is the join strategy the path operators resolved to during
	// this execution ("navigation", "binary-join", "twig-join"; "mixed"
	// when different branches chose differently; empty when no
	// join-eligible path ran).
	Strategy string `json:"strategy,omitempty"`
	// CardinalityError is the worst estimate-vs-observed relative error
	// across the operators that made a strategy choice:
	// |estimated - observed| / max(observed, 1) per instantiation. It is
	// the signal the planner's feedback cache corrects on the next run.
	CardinalityError float64 `json:"cardinalityError,omitempty"`
}

func explainProfile(q *xqgo.Query, rep xqgo.ProfileReport) *ExplainProfile {
	ep := &ExplainProfile{
		Timed:     rep.Timed,
		Operators: rep.Operators,
		Counters:  rep.Counters,
		Rewrites:  q.RewriteTrace(),
		RuleFires: q.RuleFires(),
		Plan:      q.Plan(),
	}
	for _, op := range rep.Operators {
		if op.Strategy == "" {
			continue
		}
		switch ep.Strategy {
		case "", op.Strategy:
			ep.Strategy = op.Strategy
		default:
			ep.Strategy = "mixed"
		}
		if op.Starts > 0 {
			observed := float64(op.Items) / float64(op.Starts)
			e := math.Abs(float64(op.EstItems)-observed) / math.Max(observed, 1)
			if e > ep.CardinalityError {
				ep.CardinalityError = e
			}
		}
	}
	return ep
}

// SlowQueries returns the retained slow-query log entries (newest first)
// and the lifetime count of slow requests.
func (s *Service) SlowQueries() ([]SlowEntry, uint64) { return s.slow.snapshot() }

// ErrResultTooLarge is returned when the serialized result exceeds the
// per-request byte limit. Streaming responses are truncated at the limit.
var ErrResultTooLarge = errors.New("service: result exceeds size limit")

// ErrOverloaded rejects new work while the process memory governor sits
// near its soft cap (load shedding: a fast 503 beats an OOM kill).
var ErrOverloaded = errors.New("service: memory governor near capacity")

// ErrUnknownDocument is wrapped into errors for requests naming a catalog
// document that is not registered.
var ErrUnknownDocument = errors.New("service: unknown document")

// BadRequestError marks client-side failures (malformed query text, bad
// variable values, unparseable documents), as opposed to evaluation errors.
type BadRequestError struct{ Err error }

func (e *BadRequestError) Error() string { return e.Err.Error() }
func (e *BadRequestError) Unwrap() error { return e.Err }

// limitWriter enforces the result-size cap.
type limitWriter struct {
	w   io.Writer
	rem int64 // negative = unlimited
}

func (l *limitWriter) Write(p []byte) (int, error) {
	if l.rem < 0 {
		return l.w.Write(p)
	}
	if int64(len(p)) > l.rem {
		return 0, ErrResultTooLarge
	}
	n, err := l.w.Write(p)
	l.rem -= int64(n)
	return n, err
}

// budgetWriter charges serialized result bytes against the request's
// memory budget (the materialized path retains them until the response is
// written out).
type budgetWriter struct {
	w io.Writer
	b *limits.Budget
}

func (bw *budgetWriter) Write(p []byte) (int, error) {
	if err := bw.b.Charge(int64(len(p))); err != nil {
		return 0, err
	}
	return bw.w.Write(p)
}

// Query runs a request to completion and returns the materialized result.
func (s *Service) Query(ctx context.Context, req Request) (Result, error) {
	var buf bytes.Buffer
	req.chargeOutput = true
	cached, elapsed, prof, traceID, err := s.run(ctx, req, &buf)
	return Result{XML: buf.String(), Cached: cached, Elapsed: elapsed,
		Profile: prof, TraceID: traceID}, err
}

// Execute streams the serialized result to w as it is produced (the
// engine's time-to-first-answer path). The plan-cache flag and trace id are
// returned; errors after the first byte reach the caller with the output
// truncated. Request.Explain is ignored (a streamed body has no profile
// envelope).
func (s *Service) Execute(ctx context.Context, req Request, w io.Writer) (bool, string, error) {
	req.Explain = false
	cached, _, _, traceID, err := s.run(ctx, req, w)
	return cached, traceID, err
}

// run is the shared request path: admission control, deadline, plan-cache
// lookup, per-request context assembly, execution, stats, profiling,
// tracing. The request's span tree — a "request" root over queue/plan/
// build-context stages plus the engine's own execute subtree — is finished
// into the trace ring whatever the outcome.
func (s *Service) run(ctx context.Context, req Request, w io.Writer) (cached bool, elapsed time.Duration, eprof *ExplainProfile, traceID string, err error) {
	start := time.Now()
	// Load shedding: while running queries hold tracked bytes near the
	// process soft cap, reject before spending anything on this request.
	if s.gov.Overloaded() {
		s.gov.NoteShed()
		s.stats.observeTraced(outcomeRejected, time.Since(start), "")
		return false, time.Since(start), nil, "", ErrOverloaded
	}
	timeout := req.Timeout
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	rctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	tr := req.Trace
	if tr == nil && !s.cfg.DisableTracing {
		tr = xqgo.NewTrace()
	}
	var reqSpan *xqgo.TraceSpan
	if tr != nil {
		traceID = tr.ID()
		reqSpan = tr.StartSpan("request", nil).SetAttr("route", "query")
		if req.ContextDoc != "" {
			reqSpan.SetAttr("doc", req.ContextDoc)
		}
	}

	// Per-query memory budget: charged by the engine's hot allocation
	// sites, released wholesale when the request finishes. Created even
	// without a per-query cap when a governor soft cap is set, so running
	// queries' tracked bytes feed the admission check above.
	maxQ := req.MaxQueryBytes
	if maxQ == 0 {
		maxQ = s.cfg.MaxQueryBytes
	}
	if maxQ < 0 {
		maxQ = 0
	}
	var budget *limits.Budget
	if maxQ > 0 || s.gov.SoftLimit() > 0 {
		budget = limits.NewBudget(maxQ, s.gov)
		budget.SetTraceID(traceID)
		defer budget.ReleaseAll()
	}

	var q *xqgo.Query
	var prof *xqgo.Profile
	err = s.exec.Do(rctx, func() error {
		if tr != nil {
			// Admission wait: everything between arrival and worker pickup.
			tr.AddSpan("queue", reqSpan, start, time.Now())
		}
		opts := s.cfg.Options
		pstart := time.Now()
		plan, fromCache, cerr := s.plans.Get(req.Query, &opts)
		cached = fromCache
		if tr != nil {
			tr.AddSpan("plan", reqSpan, pstart, time.Now()).
				SetAttr("cached", fromCache)
		}
		if cerr != nil {
			return &BadRequestError{Err: cerr}
		}
		q = plan
		bstart := time.Now()
		qctx, berr := s.buildContext(req)
		if tr != nil {
			tr.AddSpan("build-context", reqSpan, bstart, time.Now())
		}
		if berr != nil {
			return berr
		}
		qctx.WithTrace(tr)
		// Explain requests pay for per-pull timing; otherwise a cheap
		// counters-only profile feeds /metrics and the slow-query log.
		switch {
		case req.Explain:
			prof = q.NewProfile()
		case !s.cfg.DisableProfiling:
			prof = q.NewCountersProfile()
		}
		if prof != nil {
			qctx.WithProfile(prof)
		}
		if budget != nil {
			qctx.WithBudget(budget)
		}
		limit := req.MaxResultBytes
		if limit == 0 {
			limit = s.cfg.MaxResultBytes
		}
		if limit < 0 {
			limit = -1
		}
		out := w
		if budget != nil && req.chargeOutput {
			out = &budgetWriter{w: w, b: budget}
		}
		return q.ExecuteContext(rctx, qctx, &limitWriter{w: out, rem: limit})
	})
	elapsed = time.Since(start)
	if budget != nil && budget.Trips() > 0 {
		s.stats.noteBudgetTrip("query")
	}
	oc := classify(err)
	if tr != nil {
		reqSpan.SetAttr("outcome", oc.String())
		if err != nil {
			reqSpan.SetAttr("error", err.Error())
		}
		reqSpan.End()
		s.traces.Add(tr.Finish())
	}
	s.stats.observeTraced(oc, elapsed, traceID)
	if prof != nil {
		rep := prof.Report()
		s.stats.addEngine(rep.Counters)
		ep := explainProfile(q, rep)
		if req.Explain {
			eprof = ep
		}
		if s.cfg.SlowQueryThreshold > 0 && elapsed >= s.cfg.SlowQueryThreshold && oc != outcomeRejected {
			s.slow.add(SlowEntry{
				Time: time.Now(), Query: req.Query, Doc: req.ContextDoc,
				Micros: elapsed.Microseconds(), Outcome: oc.String(),
				Cached: cached, Profile: ep, TraceID: traceID,
				Strategy: ep.Strategy, CardinalityError: ep.CardinalityError,
			})
		}
	}
	return cached, elapsed, eprof, traceID, err
}

func classify(err error) outcome {
	switch {
	case err == nil:
		return outcomeOK
	case errors.Is(err, ErrSaturated), errors.Is(err, ErrOverloaded):
		return outcomeRejected
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return outcomeTimeout
	default:
		return outcomeError
	}
}

// buildContext assembles the per-request evaluation context: every catalog
// document is visible to fn:doc(name), collections to fn:collection(name),
// the context document's shared structural-join index is seeded, external
// variables are bound, and a streaming request body (when present) is
// attached. The request deadline is wired by the context-first execution
// call (ExecuteContext), not here.
func (s *Service) buildContext(req Request) (*xqgo.Context, error) {
	qctx := xqgo.NewContext()
	// Index seeding follows the effective join strategy: anything but
	// ForceNavigation can use the shared catalog indexes (under Auto the
	// cost model prices a seeded index as free).
	seedIndexes := s.cfg.Options.EffectiveStrategy() != xqgo.ForceNavigation
	entries := s.Catalog.snapshot()
	for _, e := range entries {
		qctx.RegisterDocument(e.Name, e.Doc)
		if seedIndexes {
			if idx, ok := e.builtIndex(); ok {
				qctx.SeedIndex(e.Doc, idx)
			}
		}
	}
	for name, members := range s.Catalog.collectionsAll() {
		var seq xqgo.Sequence
		for _, e := range members {
			seq = append(seq, e.Doc.Root())
		}
		qctx.RegisterCollection(name, seq)
	}
	if req.ContextDoc != "" {
		e, ok := s.Catalog.Get(req.ContextDoc)
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownDocument, req.ContextDoc)
		}
		qctx.WithContextNode(e.Doc)
		if seedIndexes {
			// Force-build (once) and share the index for the document the
			// query will actually navigate.
			qctx.SeedIndex(e.Doc, e.Index())
		}
	}
	for name, val := range req.Vars {
		seq, err := xqgo.ToSequence(val)
		if err != nil {
			return nil, &BadRequestError{Err: fmt.Errorf("variable $%s: %v", name, err)}
		}
		qctx.Bind(name, seq)
	}
	if req.Body != nil {
		qctx.WithStreamingInput(req.Body, StreamBodyURI)
		if req.StreamMode {
			qctx.WithStreamMode(true)
		}
	}
	if s.cfg.QueryWorkers > 1 {
		// Morsel workers lease idle request slots from the executor, so
		// intra-query parallelism shares one budget with admission control.
		qctx.WithWorkers(s.cfg.QueryWorkers).WithWorkerLimiter(s.exec)
	}
	return qctx, nil
}

// StreamBodyURI is the URI a streamed request body resolves under
// (fn:doc("request:body")).
const StreamBodyURI = "request:body"
