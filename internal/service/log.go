package service

import (
	"log/slog"
	"net/http"
	"time"
)

// Structured access logging for the HTTP surface: one slog record per
// completed request, carrying the trace id the handler assigned so log lines
// correlate with GET /traces/{id} and the slow-query log.

// loggedWriter observes the response status and byte count. It implements
// both Unwrap (so http.ResponseController reaches EnableFullDuplex on the
// real writer) and Flush (so SSE frames still flush through the wrapper —
// handleSubscribe type-asserts http.Flusher on what it is handed).
type loggedWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (l *loggedWriter) WriteHeader(status int) {
	if l.status == 0 {
		l.status = status
	}
	l.ResponseWriter.WriteHeader(status)
}

func (l *loggedWriter) Write(p []byte) (int, error) {
	if l.status == 0 {
		l.status = http.StatusOK
	}
	n, err := l.ResponseWriter.Write(p)
	l.bytes += int64(n)
	return n, err
}

func (l *loggedWriter) Unwrap() http.ResponseWriter { return l.ResponseWriter }

func (l *loggedWriter) Flush() {
	if f, ok := l.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// AccessLog wraps an HTTP handler with structured per-request logging on
// logger (default slog) at Info level: method, path, status, bytes written,
// latency, remote address, and the trace id from the handler's X-Trace-Id
// response header when tracing captured one.
func AccessLog(logger *slog.Logger, next http.Handler) http.Handler {
	if logger == nil {
		logger = slog.Default()
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		lw := &loggedWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(lw, r)
		status := lw.status
		if status == 0 {
			status = http.StatusOK
		}
		attrs := []any{
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", status),
			slog.Int64("bytes", lw.bytes),
			slog.Duration("elapsed", time.Since(start)),
			slog.String("remote", r.RemoteAddr),
		}
		if id := lw.Header().Get("X-Trace-Id"); id != "" {
			attrs = append(attrs, slog.String("traceId", id))
		}
		logger.Info("request", attrs...)
	})
}
