package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"mime"
	"net/http"
	"strconv"
	"strings"
	"time"

	"xqgo"
	"xqgo/internal/trace"
)

// NewHTTPHandler exposes the service over HTTP (stdlib net/http only):
//
//	PUT/POST /documents/{name}   register a document (body = XML)
//	GET      /documents          list registered documents
//	GET      /documents/{name}   one document's info
//	DELETE   /documents/{name}   evict a document
//	POST     /collections/{name} define a collection (body = JSON name list)
//	POST     /query              run a query (body = queryRequest JSON);
//	                             ?explain=1 adds an execution profile.
//	                             With Content-Type application/xml (or
//	                             text/xml) the body is instead a streamed
//	                             XML input document: the query comes from
//	                             ?query=, the body is parsed incrementally
//	                             (projected to the query's path set) while
//	                             the XML result streams back
//	POST     /subscribe          register continuous queries (repeatable
//	                             ?query= params) against the request body
//	                             as a live XML feed; results stream back as
//	                             Server-Sent Events from a single shared
//	                             parse pass
//	GET      /stats              counters, latency percentiles, cache ratios
//	GET      /metrics            Prometheus text exposition (OpenMetrics with
//	                             trace exemplars when Accept asks for it)
//	GET      /slow               slow-query log (newest first, with profiles
//	                             and trace-id links)
//	GET      /traces             completed request traces, newest first
//	GET      /traces/{id}        one trace's full span tree
//	GET      /subscriptions      live subscriber feeds with per-handle gauges
//	GET      /healthz            readiness: 200 while serving, 503 when the
//	                             admission queue is full or shutting down
//
// Query and subscribe requests honor an incoming W3C traceparent header
// (the captured trace continues the caller's trace id) and answer with
// Traceparent and X-Trace-Id response headers pointing at the capture.
func NewHTTPHandler(s *Service) http.Handler {
	mux := http.NewServeMux()
	register := func(w http.ResponseWriter, r *http.Request) {
		info, err := s.RegisterDocument(r.PathValue("name"), r.Body)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, info)
	}
	mux.HandleFunc("PUT /documents/{name}", register)
	mux.HandleFunc("POST /documents/{name}", register)
	mux.HandleFunc("GET /documents", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Catalog.List())
	})
	mux.HandleFunc("GET /documents/{name}", func(w http.ResponseWriter, r *http.Request) {
		e, ok := s.Catalog.Get(r.PathValue("name"))
		if !ok {
			writeError(w, fmt.Errorf("%w: %q", ErrUnknownDocument, r.PathValue("name")))
			return
		}
		writeJSON(w, http.StatusOK, e.info())
	})
	mux.HandleFunc("DELETE /documents/{name}", func(w http.ResponseWriter, r *http.Request) {
		if !s.Catalog.Evict(r.PathValue("name")) {
			writeError(w, fmt.Errorf("%w: %q", ErrUnknownDocument, r.PathValue("name")))
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST /collections/{name}", func(w http.ResponseWriter, r *http.Request) {
		var members []string
		if err := json.NewDecoder(r.Body).Decode(&members); err != nil {
			writeError(w, &BadRequestError{Err: err})
			return
		}
		if err := s.Catalog.RegisterCollection(r.PathValue("name"), members); err != nil {
			writeError(w, &BadRequestError{Err: err})
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST /query", func(w http.ResponseWriter, r *http.Request) {
		s.handleQuery(w, r)
	})
	mux.HandleFunc("POST /subscribe", func(w http.ResponseWriter, r *http.Request) {
		s.handleSubscribe(w, r)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		if acceptsOpenMetrics(r.Header.Get("Accept")) {
			w.Header().Set("Content-Type", openMetricsContentType)
			s.WriteOpenMetrics(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.WriteMetrics(w)
	})
	mux.HandleFunc("GET /slow", func(w http.ResponseWriter, r *http.Request) {
		entries, total := s.SlowQueries()
		writeJSON(w, http.StatusOK, slowLogResponse{
			ThresholdMicros: s.cfg.SlowQueryThreshold.Microseconds(),
			Total:           total,
			Entries:         entries,
		})
	})
	mux.HandleFunc("GET /traces", func(w http.ResponseWriter, r *http.Request) {
		traces, total := s.Traces()
		writeJSON(w, http.StatusOK, tracesResponse{Total: total, Traces: traces})
	})
	mux.HandleFunc("GET /traces/{id}", func(w http.ResponseWriter, r *http.Request) {
		d, ok := s.TraceByID(r.PathValue("id"))
		if !ok {
			writeJSON(w, http.StatusNotFound, errorResponse{
				Error: fmt.Sprintf("trace %q not found (ring keeps the most recent %d)", r.PathValue("id"), s.traces.Len())})
			return
		}
		writeJSON(w, http.StatusOK, d)
	})
	mux.HandleFunc("GET /subscriptions", func(w http.ResponseWriter, r *http.Request) {
		feeds := s.Subscriptions()
		writeJSON(w, http.StatusOK, subscriptionsResponse{Active: len(feeds), Feeds: feeds})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.healthStatus(), s.Health())
	})
	return mux
}

// Health is the GET /healthz readiness report.
type Health struct {
	// Status is "ok" when the service can take a query right now, else
	// "saturated" or "shutting-down".
	Status string `json:"status"`
	// Documents is the number of catalog documents loaded.
	Documents int `json:"documents"`
	// Workers/InFlight/Queued describe the executor pool.
	Workers  int   `json:"workers"`
	InFlight int64 `json:"inFlight"`
	Queued   int64 `json:"queued"`
	// ActiveFeeds is the number of live subscriber connections.
	ActiveFeeds int64   `json:"activeFeeds"`
	UptimeSecs  float64 `json:"uptimeSecs"`
}

// Health snapshots readiness: whether a request arriving now would be served.
func (s *Service) Health() Health {
	docs, _, _ := s.Catalog.Totals()
	h := Health{
		Status:      "ok",
		Documents:   docs,
		Workers:     s.exec.Workers(),
		InFlight:    s.exec.InFlight(),
		Queued:      s.exec.Queued(),
		ActiveFeeds: s.subs.active.Load(),
		UptimeSecs:  time.Since(s.stats.start).Seconds(),
	}
	switch {
	case s.ShuttingDown():
		h.Status = "shutting-down"
	case s.exec.Saturated():
		h.Status = "saturated"
	}
	return h
}

func (s *Service) healthStatus() int {
	if s.ShuttingDown() || s.exec.Saturated() {
		return http.StatusServiceUnavailable
	}
	return http.StatusOK
}

// requestTrace builds the trace for an incoming HTTP request: an incoming
// W3C traceparent header is always honored (continuing the caller's trace
// id, even with tracing disabled); otherwise a fresh trace unless disabled.
func requestTrace(r *http.Request, disabled bool) *xqgo.Trace {
	if hdr := r.Header.Get("traceparent"); hdr != "" {
		if tr, ok := xqgo.TraceFromHeader(hdr); ok {
			return tr
		}
	}
	if disabled {
		return nil
	}
	return xqgo.NewTrace()
}

// traceHeaders announces the capture on the response before the body
// commits: Traceparent for W3C-propagating clients, X-Trace-Id for humans
// pasting into GET /traces/{id}.
func traceHeaders(w http.ResponseWriter, tr *xqgo.Trace) {
	if tr == nil {
		return
	}
	w.Header().Set("Traceparent", tr.Traceparent())
	w.Header().Set("X-Trace-Id", tr.ID())
}

// queryRequest is the POST /query body.
type queryRequest struct {
	Query          string         `json:"query"`
	Doc            string         `json:"doc,omitempty"`
	Vars           map[string]any `json:"vars,omitempty"`
	TimeoutMs      int64          `json:"timeoutMs,omitempty"`
	MaxResultBytes int64          `json:"maxResultBytes,omitempty"`
	// Stream switches to chunked XML output: bytes are written as the
	// engine produces them (no result materialization server-side).
	Stream bool `json:"stream,omitempty"`
	// Explain attaches an execution profile to the response (also
	// settable as ?explain=1). Ignored for streamed responses.
	Explain bool `json:"explain,omitempty"`
}

// queryResponse is the materialized POST /query response.
type queryResponse struct {
	Result  string          `json:"result"`
	Cached  bool            `json:"cached"`
	Micros  int64           `json:"micros"`
	Profile *ExplainProfile `json:"profile,omitempty"`
	// TraceID names the request's captured span tree (GET /traces/{id}).
	TraceID string `json:"traceId,omitempty"`
}

// slowLogResponse is the GET /slow envelope.
type slowLogResponse struct {
	ThresholdMicros int64       `json:"thresholdMicros"`
	Total           uint64      `json:"total"`
	Entries         []SlowEntry `json:"entries"`
}

// tracesResponse is the GET /traces envelope.
type tracesResponse struct {
	Total  uint64       `json:"total"`
	Traces []trace.Data `json:"traces"`
}

// subscriptionsResponse is the GET /subscriptions envelope.
type subscriptionsResponse struct {
	Active int          `json:"active"`
	Feeds  []FeedStatus `json:"feeds"`
}

// isXMLContentType reports whether a Content-Type header value names an XML
// media type: application/xml, text/xml, or any +xml suffix type
// (application/soap+xml, image/svg+xml, ...). Matching follows RFC 7231 —
// case-insensitive, parameters ignored — via mime.ParseMediaType, instead of
// a naive prefix test that missed "Application/XML" and matched
// "application/xmlfoo".
func isXMLContentType(ct string) bool {
	if ct == "" {
		return false
	}
	mt, _, err := mime.ParseMediaType(ct)
	if err != nil {
		return false
	}
	return mt == "application/xml" || mt == "text/xml" || strings.HasSuffix(mt, "+xml")
}

func (s *Service) handleQuery(w http.ResponseWriter, r *http.Request) {
	if isXMLContentType(r.Header.Get("Content-Type")) {
		s.handleStreamQuery(w, r)
		return
	}
	var qr queryRequest
	if err := json.NewDecoder(r.Body).Decode(&qr); err != nil {
		writeError(w, &BadRequestError{Err: fmt.Errorf("invalid request body: %v", err)})
		return
	}
	if qr.Query == "" {
		writeError(w, &BadRequestError{Err: errors.New("missing \"query\"")})
		return
	}
	tr := requestTrace(r, s.cfg.DisableTracing)
	req := Request{
		Query:          qr.Query,
		ContextDoc:     qr.Doc,
		Vars:           normalizeVars(qr.Vars),
		Timeout:        time.Duration(qr.TimeoutMs) * time.Millisecond,
		MaxResultBytes: qr.MaxResultBytes,
		Explain:        qr.Explain || r.URL.Query().Get("explain") == "1",
		Trace:          tr,
	}
	traceHeaders(w, tr)
	if qr.Stream {
		w.Header().Set("Content-Type", "application/xml; charset=utf-8")
		// Status and headers are committed at the first write; errors after
		// that can only truncate the stream.
		if _, _, err := s.Execute(r.Context(), req, w); err != nil {
			writeError(w, err) // no-op on the status line if already streaming
		}
		return
	}
	res, err := s.Query(r.Context(), req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, queryResponse{
		Result:  res.XML,
		Cached:  res.Cached,
		Micros:  res.Elapsed.Microseconds(),
		Profile: res.Profile,
		TraceID: res.TraceID,
	})
}

// handleStreamQuery is the streaming-ingestion form of POST /query: the
// request body is the XML input document and the serialized result streams
// back as it is produced — output can begin before the body is fully read.
// Streamable queries run on the event-driven evaluator (the body is never
// materialized); other plans fall back to lazy, projected ingestion.
// ?mode=store forces the fallback path. The query text comes from the
// ?query= parameter; ?timeoutMs= and ?maxResultBytes= override the
// configured limits.
func (s *Service) handleStreamQuery(w http.ResponseWriter, r *http.Request) {
	qs := r.URL.Query()
	query := qs.Get("query")
	if query == "" {
		writeError(w, &BadRequestError{Err: errors.New("missing \"query\" parameter")})
		return
	}
	timeoutMs, _ := strconv.ParseInt(qs.Get("timeoutMs"), 10, 64)
	maxBytes, _ := strconv.ParseInt(qs.Get("maxResultBytes"), 10, 64)
	tr := requestTrace(r, s.cfg.DisableTracing)
	req := Request{
		Query:          query,
		Body:           r.Body,
		StreamMode:     qs.Get("mode") != "store",
		Timeout:        time.Duration(timeoutMs) * time.Millisecond,
		MaxResultBytes: maxBytes,
		Trace:          tr,
	}
	// Full duplex lets the result stream out while the body is still being
	// read — otherwise HTTP/1.x drains (and closes) the body at the first
	// response write, which defeats incremental evaluation entirely.
	_ = http.NewResponseController(w).EnableFullDuplex()
	w.Header().Set("Content-Type", "application/xml; charset=utf-8")
	traceHeaders(w, tr)
	if _, _, err := s.Execute(r.Context(), req, w); err != nil {
		writeError(w, err) // no-op on the status line if already streaming
	}
}

// normalizeVars converts JSON-decoded variable values into the Go kinds
// xqgo.ToSequence accepts: integral float64s become int64 (JSON has no
// integer type), and homogeneous arrays become typed slices.
func normalizeVars(vars map[string]any) map[string]any {
	if len(vars) == 0 {
		return nil
	}
	out := make(map[string]any, len(vars))
	for k, v := range vars {
		out[k] = normalizeJSONValue(v)
	}
	return out
}

func normalizeJSONValue(v any) any {
	switch x := v.(type) {
	case float64:
		if x == float64(int64(x)) {
			return int64(x)
		}
		return x
	case []any:
		ints := make([]int64, 0, len(x))
		floats := make([]float64, 0, len(x))
		bools := make([]bool, 0, len(x))
		strs := make([]string, 0, len(x))
		for _, e := range x {
			switch y := normalizeJSONValue(e).(type) {
			case int64:
				ints = append(ints, y)
				floats = append(floats, float64(y))
			case float64:
				floats = append(floats, y)
			case bool:
				bools = append(bools, y)
			case string:
				strs = append(strs, y)
			}
		}
		switch {
		case len(ints) == len(x):
			return ints
		case len(floats) == len(x):
			return floats
		case len(bools) == len(x):
			return bools
		case len(strs) == len(x):
			return strs
		default:
			return x // mixed: ToSequence recurses item by item
		}
	default:
		return v
	}
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, err error) {
	writeJSON(w, statusForError(err), errorResponse{Error: err.Error()})
}

// statusForError maps service errors onto HTTP semantics: overload is 503
// (retryable), deadline expiry 504, oversized results 413, client mistakes
// 400/404, and runtime query failures 422.
func statusForError(err error) int {
	var bad *BadRequestError
	switch {
	case errors.As(err, &bad):
		return http.StatusBadRequest
	case errors.Is(err, ErrUnknownDocument):
		return http.StatusNotFound
	case errors.Is(err, ErrSaturated), errors.Is(err, ErrShuttingDown), errors.Is(err, ErrOverloaded):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	case errors.Is(err, ErrResultTooLarge):
		return http.StatusRequestEntityTooLarge
	default:
		return http.StatusUnprocessableEntity
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}
