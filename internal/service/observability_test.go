package service

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"xqgo"
)

// ---- Prometheus exposition ----

// promSample matches one sample line of the text exposition format 0.0.4:
// name, optional label set, and a float value.
var promSample = regexp.MustCompile(
	`^([a-zA-Z_:][a-zA-Z0-9_:]*)` +
		`(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"(?:,[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*")*\})?` +
		` (NaN|[-+]?Inf|[-+]?[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?)$`)

// validatePromText line-checks a /metrics body: every non-comment line must
// be a well-formed sample whose metric was declared by a preceding # TYPE
// (histogram samples may use the _bucket/_sum/_count suffixes).
func validatePromText(t *testing.T, body string) {
	t.Helper()
	typed := map[string]string{}
	for i, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(rest) != 2 || rest[0] == "" || rest[1] == "" {
				t.Errorf("line %d: malformed HELP: %q", i+1, line)
			}
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(rest) != 2 {
				t.Errorf("line %d: malformed TYPE: %q", i+1, line)
				continue
			}
			switch rest[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Errorf("line %d: unknown metric type %q", i+1, rest[1])
			}
			if _, dup := typed[rest[0]]; dup {
				t.Errorf("line %d: duplicate TYPE for %q", i+1, rest[0])
			}
			typed[rest[0]] = rest[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		m := promSample.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("line %d: not a valid sample: %q", i+1, line)
			continue
		}
		name := m[1]
		declared := typed[name] != ""
		if !declared {
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				if base := strings.TrimSuffix(name, suf); base != name && typed[base] == "histogram" {
					declared = true
					break
				}
			}
		}
		if !declared {
			t.Errorf("line %d: sample %q has no preceding TYPE declaration", i+1, name)
		}
		if m[3] != "NaN" && !strings.HasSuffix(m[3], "Inf") {
			if _, err := strconv.ParseFloat(m[3], 64); err != nil {
				t.Errorf("line %d: bad value %q: %v", i+1, m[3], err)
			}
		}
	}
}

func TestMetricsExposition(t *testing.T) {
	s := newTestService(t, Config{})
	for i := 0; i < 3; i++ {
		if _, err := s.Query(context.Background(), Request{Query: "count(/bib/book)", ContextDoc: "bib"}); err != nil {
			t.Fatal(err)
		}
	}
	// One failing query so the error counter is nonzero too.
	if _, err := s.Query(context.Background(), Request{Query: `error()`, ContextDoc: "bib"}); err == nil {
		t.Fatal("error() should fail")
	}

	h := NewHTTPHandler(s)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want text exposition 0.0.4", ct)
	}
	body := rec.Body.String()
	validatePromText(t, body)

	for _, want := range []string{
		`xqd_requests_total{outcome="ok"} 3`,
		`xqd_requests_total{outcome="error"} 1`,
		`xqd_request_duration_seconds_bucket{le="+Inf"} 4`,
		`xqd_request_duration_seconds_count 4`,
		`xqd_catalog_documents 1`,
		`xqd_engine_xml_tokens_total`,
		`xqd_profiled_requests_total 4`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Histogram buckets must be cumulative (monotonically non-decreasing).
	last := int64(-1)
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, "xqd_request_duration_seconds_bucket") {
			continue
		}
		v, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("bucket line %q: %v", line, err)
		}
		if v < last {
			t.Errorf("bucket counts not cumulative: %q after %d", line, last)
		}
		last = v
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{100 * time.Microsecond, 0},
		{500 * time.Microsecond, 0}, // boundary is inclusive (le)
		{500*time.Microsecond + 1, 1},
		{time.Millisecond, 1},
		{2 * time.Millisecond, 2},
		{10 * time.Second, len(latBuckets) - 1},
		{11 * time.Second, len(latBuckets)}, // +Inf slot
	}
	for _, c := range cases {
		if got := histBucket(c.d); got != c.want {
			t.Errorf("histBucket(%v) = %d, want %d", c.d, got, c.want)
		}
	}
	// The bounds themselves must be strictly increasing or the cumulation
	// in WriteMetrics is meaningless.
	for i := 1; i < len(latBuckets); i++ {
		if latBuckets[i] <= latBuckets[i-1] {
			t.Errorf("latBuckets not increasing at %d: %v", i, latBuckets)
		}
	}
}

// ---- slow-query log ----

func TestSlowLogRingEviction(t *testing.T) {
	l := newSlowLog(3)
	for i := 1; i <= 5; i++ {
		l.add(SlowEntry{Query: strconv.Itoa(i), Micros: int64(i)})
	}
	entries, total := l.snapshot()
	if total != 5 {
		t.Errorf("total = %d, want 5", total)
	}
	if len(entries) != 3 {
		t.Fatalf("len(entries) = %d, want 3", len(entries))
	}
	// Newest first; oldest two (1, 2) evicted.
	for i, want := range []string{"5", "4", "3"} {
		if entries[i].Query != want {
			t.Errorf("entries[%d].Query = %q, want %q", i, entries[i].Query, want)
		}
	}
}

func TestSlowQueryEndpoint(t *testing.T) {
	// A 1ns threshold makes every query slow, so a real query lands in the
	// log with its full profile attached.
	s := newTestService(t, Config{SlowQueryThreshold: time.Nanosecond})
	const slowQ = `for $b in /bib/book where $b/price > 10 return string($b/title)`
	if _, err := s.Query(context.Background(), Request{Query: slowQ, ContextDoc: "bib"}); err != nil {
		t.Fatal(err)
	}

	h := NewHTTPHandler(s)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/slow", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /slow = %d: %s", rec.Code, rec.Body.String())
	}
	var resp slowLogResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode /slow: %v", err)
	}
	if resp.Total != 1 || len(resp.Entries) != 1 {
		t.Fatalf("slow log = total %d, %d entries; want 1, 1", resp.Total, len(resp.Entries))
	}
	e := resp.Entries[0]
	if e.Query != slowQ || e.Doc != "bib" {
		t.Errorf("entry = %q doc %q", e.Query, e.Doc)
	}
	if e.Profile == nil {
		t.Fatal("slow entry carries no profile")
	}
	if len(e.Profile.Operators) == 0 {
		t.Error("slow entry profile has no operator stats")
	}
	if e.Profile.Counters.XMLTokens == 0 {
		t.Error("slow entry profile counts no XML tokens")
	}

	// Rejected requests must never enter the log; disabled threshold logs
	// nothing at all.
	s2 := newTestService(t, Config{SlowQueryThreshold: -1})
	if _, err := s2.Query(context.Background(), Request{Query: slowQ, ContextDoc: "bib"}); err != nil {
		t.Fatal(err)
	}
	if entries, total := s2.SlowQueries(); total != 0 || len(entries) != 0 {
		t.Errorf("disabled slow log recorded %d entries (total %d)", len(entries), total)
	}
}

func TestQueryExplainHTTP(t *testing.T) {
	s := newTestService(t, Config{})
	h := NewHTTPHandler(s)
	body := `{"query":"for $b in /bib/book where $b/price > 10 return string($b/title)","doc":"bib"}`
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/query?explain=1", strings.NewReader(body)))
	if rec.Code != 200 {
		t.Fatalf("POST /query?explain=1 = %d: %s", rec.Code, rec.Body.String())
	}
	var resp queryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Profile == nil {
		t.Fatal("explain=1 returned no profile")
	}
	if !resp.Profile.Timed {
		t.Error("explain profile should be timed")
	}
	if len(resp.Profile.Operators) < 3 {
		t.Errorf("explain profile has %d operators, want >= 3", len(resp.Profile.Operators))
	}
	items := int64(0)
	for _, op := range resp.Profile.Operators {
		items += op.Items
	}
	if items == 0 {
		t.Error("explain profile counted no items")
	}
	if len(resp.Profile.RuleFires) == 0 {
		t.Error("explain profile names no fired optimizer rules")
	}
	if resp.Profile.Plan == "" {
		t.Error("explain profile has no plan")
	}

	// Without explain, no profile envelope.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/query", strings.NewReader(body)))
	if rec.Code != 200 {
		t.Fatalf("POST /query = %d", rec.Code)
	}
	var plain queryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &plain); err != nil {
		t.Fatal(err)
	}
	if plain.Profile != nil {
		t.Error("profile attached without explain")
	}
}

// ---- plan-choice observability ----

// The explain envelope, the slow-query log and /metrics all surface which
// join strategy an execution resolved to and how far off the cardinality
// estimate was.
func TestPlanChoiceObservability(t *testing.T) {
	s := newTestService(t, Config{
		Options:            xqgo.Options{Strategy: xqgo.ForceTwig},
		SlowQueryThreshold: time.Nanosecond, // everything is slow
	})
	res, err := s.Query(context.Background(), Request{
		Query: "count(/bib//book//title)", ContextDoc: "bib", Explain: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile == nil {
		t.Fatal("explain returned no profile")
	}
	if res.Profile.Strategy != "twig-join" {
		t.Errorf("explain strategy = %q, want twig-join", res.Profile.Strategy)
	}
	if res.Profile.Counters.TwigJoins == 0 {
		t.Error("twig execution counted no twig joins")
	}
	if res.Profile.Counters.PlanTwigJoin == 0 {
		t.Error("plan-choice counter did not record the twig decision")
	}
	if res.Profile.CardinalityError < 0 {
		t.Errorf("cardinality error = %g, want >= 0", res.Profile.CardinalityError)
	}

	entries, _ := s.SlowQueries()
	if len(entries) == 0 {
		t.Fatal("no slow entry recorded")
	}
	if entries[0].Strategy != "twig-join" {
		t.Errorf("slow entry strategy = %q, want twig-join", entries[0].Strategy)
	}

	h := NewHTTPHandler(s)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	validatePromText(t, body)
	for _, want := range []string{
		`xqd_engine_twig_joins_total`,
		`xqd_plan_choice_total{strategy="navigation"}`,
		`xqd_plan_choice_total{strategy="binary-join"} 0`,
		`xqd_plan_choice_total{strategy="twig-join"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
