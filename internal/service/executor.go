package service

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrSaturated is returned when a request arrives while the worker pool is
// busy and the admission queue is full — the graceful-degradation path:
// reject fast (HTTP 503) instead of queueing unboundedly and growing
// memory under overload.
var ErrSaturated = errors.New("service: saturated — admission queue full")

// Executor is a bounded worker pool with admission control. At most
// `workers` requests execute concurrently; at most `queue` more wait for a
// slot; anything beyond that is rejected immediately with ErrSaturated.
// Queued requests still honor their deadline: a request whose context
// expires while waiting never starts executing.
type Executor struct {
	slots    chan struct{} // capacity = workers
	admitted atomic.Int64  // executing + queued
	limit    int64         // workers + queue
	inFlight atomic.Int64  // currently executing
	leased   atomic.Int64  // worker slots on loan to morsel workers
}

// NewExecutor creates a pool of the given size. workers < 1 defaults to 1;
// queue < 0 defaults to 0 (no waiting: reject whenever all workers busy).
func NewExecutor(workers, queue int) *Executor {
	if workers < 1 {
		workers = 1
	}
	if queue < 0 {
		queue = 0
	}
	return &Executor{
		slots: make(chan struct{}, workers),
		limit: int64(workers + queue),
	}
}

// Do runs fn under admission control. It returns ErrSaturated without
// running fn when the pool and queue are full, and ctx.Err() without
// running fn when the context expires while queued.
func (e *Executor) Do(ctx context.Context, fn func() error) error {
	if e.admitted.Add(1) > e.limit {
		e.admitted.Add(-1)
		return ErrSaturated
	}
	defer e.admitted.Add(-1)

	select {
	case e.slots <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	}
	e.inFlight.Add(1)
	defer func() {
		e.inFlight.Add(-1)
		<-e.slots
	}()
	return fn()
}

// InFlight returns the number of currently executing requests.
func (e *Executor) InFlight() int64 { return e.inFlight.Load() }

// TryLease implements xqgo.WorkerLimiter: a running query borrows up to n
// idle worker slots for one morsel round. Grants are strictly best-effort
// and never starve admission — nothing is granted while requests wait in
// the queue, and each grab is non-blocking, so a grant can only take slots
// no queued request was waiting for at that instant. The query's own
// goroutine (already holding a request slot) is its guaranteed minimum of
// one worker regardless of what this returns.
func (e *Executor) TryLease(n int) int {
	granted := 0
	for granted < n {
		if e.Queued() > 0 {
			break
		}
		select {
		case e.slots <- struct{}{}:
			granted++
		default:
			return e.noteLeased(granted)
		}
	}
	return e.noteLeased(granted)
}

func (e *Executor) noteLeased(n int) int {
	if n > 0 {
		e.leased.Add(int64(n))
	}
	return n
}

// Release implements xqgo.WorkerLimiter, returning slots taken by TryLease.
func (e *Executor) Release(n int) {
	for i := 0; i < n; i++ {
		<-e.slots
	}
	if n > 0 {
		e.leased.Add(int64(-n))
	}
}

// Leased returns the number of worker slots currently on loan to morsel
// workers of running queries.
func (e *Executor) Leased() int64 { return e.leased.Load() }

// Queued returns the number of requests waiting for a worker slot.
func (e *Executor) Queued() int64 {
	q := e.admitted.Load() - e.inFlight.Load()
	if q < 0 {
		q = 0
	}
	return q
}

// Workers returns the concurrency limit.
func (e *Executor) Workers() int { return cap(e.slots) }

// Saturated reports whether a request arriving now would be rejected with
// ErrSaturated — the readiness signal behind GET /healthz.
func (e *Executor) Saturated() bool { return e.admitted.Load() >= e.limit }
