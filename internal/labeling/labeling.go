// Package labeling provides node-labeling schemes for XML trees: the
// (start, end, level) region encoding used by structural joins and an
// ORDPATH-style Dewey encoding. Labels answer the structural predicates —
// ancestor/descendant, parent/child, document order — in O(1) (region) or
// O(depth) (Dewey) without touching the tree, which is what makes
// merge/stack-based structural joins possible.
package labeling

// Region is an interval label: Start and End are pre/post-style positions
// with Start < child.Start <= child.End < End for every descendant, and
// Level is the depth from the root (root = 0).
type Region struct {
	Start int64
	End   int64
	Level int32
}

// Contains reports whether r is a proper ancestor of o (o strictly inside r).
func (r Region) Contains(o Region) bool {
	return r.Start < o.Start && o.End <= r.End
}

// ParentOf reports whether r is the parent of o.
func (r Region) ParentOf(o Region) bool {
	return r.Contains(o) && r.Level+1 == o.Level
}

// Before reports whether r precedes o in document order (and is not an
// ancestor of o).
func (r Region) Before(o Region) bool { return r.End < o.Start }

// Compare orders two regions by document order of their start positions.
func (r Region) Compare(o Region) int {
	switch {
	case r.Start < o.Start:
		return -1
	case r.Start > o.Start:
		return 1
	default:
		return 0
	}
}

// Dewey is a Dewey-decimal label: the path of 1-based sibling ordinals from
// the root. The root element has label [1]; its second child [1 2]; etc.
type Dewey []uint32

// IsAncestorOf reports whether d is a proper ancestor of o.
func (d Dewey) IsAncestorOf(o Dewey) bool {
	if len(d) >= len(o) {
		return false
	}
	for i, c := range d {
		if o[i] != c {
			return false
		}
	}
	return true
}

// IsParentOf reports whether d is the parent of o.
func (d Dewey) IsParentOf(o Dewey) bool {
	return len(d)+1 == len(o) && d.IsAncestorOf(o)
}

// Compare orders two Dewey labels in document order.
func (d Dewey) Compare(o Dewey) int {
	n := len(d)
	if len(o) < n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		switch {
		case d[i] < o[i]:
			return -1
		case d[i] > o[i]:
			return 1
		}
	}
	switch {
	case len(d) < len(o):
		return -1 // ancestor precedes descendant
	case len(d) > len(o):
		return 1
	default:
		return 0
	}
}

// Level returns the depth encoded by the label (len - 1 for the root's
// children convention used here: root has level 0 and label length 1).
func (d Dewey) Level() int32 { return int32(len(d)) - 1 }

// Clone returns an independent copy of the label.
func (d Dewey) Clone() Dewey { return append(Dewey(nil), d...) }
