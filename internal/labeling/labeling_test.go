package labeling

import (
	"testing"
	"testing/quick"
)

func TestRegionPredicates(t *testing.T) {
	root := Region{Start: 0, End: 10, Level: 0}
	child := Region{Start: 1, End: 5, Level: 1}
	grand := Region{Start: 2, End: 3, Level: 2}
	sibling := Region{Start: 6, End: 9, Level: 1}

	if !root.Contains(child) || !root.Contains(grand) || !child.Contains(grand) {
		t.Error("containment chain")
	}
	if child.Contains(root) || grand.Contains(child) {
		t.Error("containment is antisymmetric")
	}
	if child.Contains(sibling) || sibling.Contains(child) {
		t.Error("siblings do not contain each other")
	}
	if !root.ParentOf(child) || root.ParentOf(grand) {
		t.Error("ParentOf uses levels")
	}
	if !child.ParentOf(grand) {
		t.Error("child is parent of grand")
	}
	if !child.Before(sibling) || sibling.Before(child) {
		t.Error("Before is document order of disjoint regions")
	}
	if root.Before(child) || child.Before(root) {
		t.Error("ancestors are not Before their descendants")
	}
	if child.Compare(sibling) >= 0 || sibling.Compare(child) <= 0 || child.Compare(child) != 0 {
		t.Error("Compare by start position")
	}
}

func TestDeweyPredicates(t *testing.T) {
	root := Dewey{1}
	a := Dewey{1, 2}
	b := Dewey{1, 2, 3}
	c := Dewey{1, 3}

	if !root.IsAncestorOf(a) || !root.IsAncestorOf(b) || !a.IsAncestorOf(b) {
		t.Error("ancestry chain")
	}
	if a.IsAncestorOf(a) {
		t.Error("not reflexive")
	}
	if a.IsAncestorOf(c) || c.IsAncestorOf(a) {
		t.Error("siblings unrelated")
	}
	if !a.IsParentOf(b) || root.IsParentOf(b) {
		t.Error("IsParentOf is one level")
	}
	if a.Compare(c) >= 0 || c.Compare(a) <= 0 {
		t.Error("sibling order")
	}
	if root.Compare(a) >= 0 {
		t.Error("ancestor precedes descendant")
	}
	if a.Compare(a) != 0 {
		t.Error("reflexive compare")
	}
	if a.Level() != 1 || b.Level() != 2 {
		t.Error("levels")
	}
	cl := b.Clone()
	cl[2] = 99
	if b[2] == 99 {
		t.Error("Clone must copy")
	}
}

// Property: for random Dewey labels, ancestorship implies Compare < 0 and
// prefix relation.
func TestDeweyAncestryQuick(t *testing.T) {
	f := func(base []uint8, ext []uint8) bool {
		if len(base) == 0 || len(ext) == 0 {
			return true
		}
		if len(base) > 8 {
			base = base[:8]
		}
		if len(ext) > 8 {
			ext = ext[:8]
		}
		d := make(Dewey, len(base))
		for i, v := range base {
			d[i] = uint32(v) + 1
		}
		child := d.Clone()
		for _, v := range ext {
			child = append(child, uint32(v)+1)
		}
		return d.IsAncestorOf(child) && d.Compare(child) < 0 && child.Compare(d) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: region containment is transitive for randomly nested regions.
func TestRegionTransitivityQuick(t *testing.T) {
	f := func(a, b, c uint16) bool {
		// Build three nested regions deterministically.
		s1 := int64(a % 100)
		r1 := Region{Start: s1, End: s1 + 300, Level: 0}
		r2 := Region{Start: s1 + 1 + int64(b%50), End: s1 + 200, Level: 1}
		r3 := Region{Start: r2.Start + 1 + int64(c%20), End: r2.Start + 100, Level: 2}
		if !r1.Contains(r2) || !r2.Contains(r3) {
			return true // construction out of shape; skip
		}
		return r1.Contains(r3)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
