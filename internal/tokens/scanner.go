package tokens

import (
	"fmt"

	"xqgo/internal/store"
	"xqgo/internal/xdm"
)

// DocScanner streams the tokens of a stored subtree. Because the store is an
// array in document order, scanning is a linear walk and Skip is a constant-
// time jump to the end of the current subtree — the property the paper's
// skip() contract is designed around.
type DocScanner struct {
	doc  *store.Document
	root int32

	// cursor state
	next    int32 // next node id to open
	opened  bool
	pending []frame // open nodes awaiting End tokens
	// subtreeEnd of the token most recently returned by Next, for Skip.
	lastStart  int32
	lastIsOpen bool
}

type frame struct {
	id  int32
	end int32
}

// NewDocScanner creates a scanner over the subtree rooted at id (use 0 for
// the whole document).
func NewDocScanner(d *store.Document, id int32) *DocScanner {
	return &DocScanner{doc: d, root: id}
}

// Open resets the scanner to the start of the subtree.
func (s *DocScanner) Open() error {
	s.next = s.root
	s.opened = true
	s.pending = s.pending[:0]
	s.lastIsOpen = false
	return nil
}

// Next returns the next token of the pre-order walk.
func (s *DocScanner) Next() (Token, bool, error) {
	if !s.opened {
		return Token{}, false, fmt.Errorf("tokens: Next before Open")
	}
	d := s.doc
	end := d.EndID(s.root)
	// Emit pending End tokens for nodes whose subtree we have left.
	if len(s.pending) > 0 {
		top := s.pending[len(s.pending)-1]
		if s.next > top.end || s.next > end {
			s.pending = s.pending[:len(s.pending)-1]
			s.lastIsOpen = false
			if d.Kind(top.id) == xdm.DocumentNode {
				return Token{Kind: KindEndDocument}, true, nil
			}
			return Token{Kind: KindEndElement, Name: d.NameOf(top.id)}, true, nil
		}
	}
	if s.next > end {
		return Token{}, false, nil
	}
	id := s.next
	s.next++
	switch d.Kind(id) {
	case xdm.DocumentNode:
		s.pending = append(s.pending, frame{id: id, end: d.EndID(id)})
		s.lastStart, s.lastIsOpen = id, true
		return Token{Kind: KindStartDocument}, true, nil
	case xdm.ElementNode:
		s.pending = append(s.pending, frame{id: id, end: d.EndID(id)})
		s.lastStart, s.lastIsOpen = id, true
		return Token{Kind: KindStartElement, Name: d.NameOf(id)}, true, nil
	case xdm.AttributeNode:
		s.lastIsOpen = false
		return Token{Kind: KindAttribute, Name: d.NameOf(id), Value: d.Value(id)}, true, nil
	case xdm.TextNode:
		s.lastIsOpen = false
		return Token{Kind: KindText, Value: d.Value(id)}, true, nil
	case xdm.CommentNode:
		s.lastIsOpen = false
		return Token{Kind: KindComment, Value: d.Value(id)}, true, nil
	case xdm.PINode:
		s.lastIsOpen = false
		return Token{Kind: KindPI, Name: d.NameOf(id), Value: d.Value(id)}, true, nil
	default:
		return Token{}, false, fmt.Errorf("tokens: unexpected node kind %v", d.Kind(id))
	}
}

// Skip jumps past the subtree whose Start token was most recently returned:
// a constant-time operation over the array store.
func (s *DocScanner) Skip() error {
	if !s.opened {
		return fmt.Errorf("tokens: Skip before Open")
	}
	if !s.lastIsOpen {
		return nil // nothing open: Skip is a no-op
	}
	s.next = s.doc.EndID(s.lastStart) + 1
	// The subtree's End token will not be emitted either.
	if len(s.pending) > 0 && s.pending[len(s.pending)-1].id == s.lastStart {
		s.pending = s.pending[:len(s.pending)-1]
	}
	s.lastIsOpen = false
	return nil
}

// Close releases resources (none held).
func (s *DocScanner) Close() { s.opened = false }

// SliceIterator replays a materialized token slice; it is the product of the
// buffer-iterator factory.
type SliceIterator struct {
	toks []Token
	pos  int
}

// NewSliceIterator creates an iterator over materialized tokens.
func NewSliceIterator(toks []Token) *SliceIterator { return &SliceIterator{toks: toks} }

// Open resets to the first token.
func (s *SliceIterator) Open() error { s.pos = 0; return nil }

// Next returns the next token.
func (s *SliceIterator) Next() (Token, bool, error) {
	if s.pos >= len(s.toks) {
		return Token{}, false, nil
	}
	t := s.toks[s.pos]
	s.pos++
	return t, true, nil
}

// Skip advances past the subtree opened by the most recently returned token
// by scanning for the matching End token.
func (s *SliceIterator) Skip() error {
	if s.pos == 0 {
		return nil
	}
	last := s.toks[s.pos-1]
	if last.Kind != KindStartElement && last.Kind != KindStartDocument {
		return nil
	}
	depth := 1
	for ; s.pos < len(s.toks); s.pos++ {
		switch s.toks[s.pos].Kind {
		case KindStartElement, KindStartDocument:
			depth++
		case KindEndElement, KindEndDocument:
			depth--
			if depth == 0 {
				s.pos++
				return nil
			}
		}
	}
	return nil
}

// Close releases resources (none held).
func (s *SliceIterator) Close() {}

// Materialize drains an iterator into a token slice.
func Materialize(it Iterator) ([]Token, error) {
	if err := it.Open(); err != nil {
		return nil, err
	}
	defer it.Close()
	var out []Token
	for {
		t, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, t)
	}
}

// BufferFactory materializes a producer once and hands out any number of
// independent consumers — the paper's buffer-iterator factory for common
// sub-expressions and multiply-used variables. Materialization is lazy: the
// producer is not drained until the first consumer is requested.
type BufferFactory struct {
	src    Iterator
	toks   []Token
	filled bool
	err    error
}

// NewBufferFactory wraps a producer.
func NewBufferFactory(src Iterator) *BufferFactory { return &BufferFactory{src: src} }

// Consumer returns a fresh iterator over the buffered stream.
func (f *BufferFactory) Consumer() (Iterator, error) {
	if !f.filled {
		f.toks, f.err = Materialize(f.src)
		f.filled = true
	}
	if f.err != nil {
		return nil, f.err
	}
	return NewSliceIterator(f.toks), nil
}
