package tokens

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"xqgo/internal/store"
	"xqgo/internal/xdm"
)

func sampleDoc(t testing.TB) *store.Document {
	t.Helper()
	b := store.NewBuilder(store.BuilderOptions{})
	b.StartDocument()
	b.StartElement(xdm.LocalName("book"))
	if err := b.Attr(xdm.LocalName("year"), "1967"); err != nil {
		t.Fatal(err)
	}
	b.StartElement(xdm.LocalName("title"))
	b.Text("No Kidding")
	b.EndElement()
	b.StartElement(xdm.LocalName("author"))
	b.Text("Whoever")
	b.EndElement()
	b.Comment("c")
	b.PI("pi", "data")
	b.EndElement()
	doc, err := b.Done()
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func kindsOf(toks []Token) []Kind {
	out := make([]Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestDocScannerTokenSequence(t *testing.T) {
	doc := sampleDoc(t)
	toks, err := Materialize(NewDocScanner(doc, 0))
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{
		KindStartDocument,
		KindStartElement, // book
		KindAttribute,    // year
		KindStartElement, // title
		KindText,
		KindEndElement,
		KindStartElement, // author
		KindText,
		KindEndElement,
		KindComment,
		KindPI,
		KindEndElement, // book
		KindEndDocument,
	}
	got := kindsOf(toks)
	if len(got) != len(want) {
		t.Fatalf("token count = %d, want %d (%v)", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
	if toks[1].Name.Local != "book" || toks[2].Value != "1967" || toks[4].Value != "No Kidding" {
		t.Error("token payloads")
	}
}

func TestDocScannerSubtree(t *testing.T) {
	doc := sampleDoc(t)
	// Find the title element id.
	var titleID int32 = -1
	for id := int32(0); id < int32(doc.NumNodes()); id++ {
		if doc.Kind(id) == xdm.ElementNode && doc.NameOf(id).Local == "title" {
			titleID = id
		}
	}
	toks, err := Materialize(NewDocScanner(doc, titleID))
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{KindStartElement, KindText, KindEndElement}
	if len(toks) != 3 {
		t.Fatalf("subtree tokens = %v", kindsOf(toks))
	}
	for i := range want {
		if toks[i].Kind != want[i] {
			t.Errorf("subtree token %d = %v", i, toks[i].Kind)
		}
	}
}

func TestSkipJumpsSubtree(t *testing.T) {
	doc := sampleDoc(t)
	sc := NewDocScanner(doc, 0)
	if err := sc.Open(); err != nil {
		t.Fatal(err)
	}
	// Read to the title StartElement, then Skip: next token must be the
	// author StartElement (the first token of the sibling).
	for {
		tok, ok, err := sc.Next()
		if err != nil || !ok {
			t.Fatal("did not find title")
		}
		if tok.Kind == KindStartElement && tok.Name.Local == "title" {
			break
		}
	}
	if err := sc.Skip(); err != nil {
		t.Fatal(err)
	}
	tok, ok, err := sc.Next()
	if err != nil || !ok {
		t.Fatal(err)
	}
	if tok.Kind != KindStartElement || tok.Name.Local != "author" {
		t.Errorf("after Skip: %v %v", tok.Kind, tok.Name)
	}
	// The last returned token was StartElement(author), so another Skip
	// jumps the author subtree too, landing on the comment.
	if err := sc.Skip(); err != nil {
		t.Fatal(err)
	}
	tok, _, _ = sc.Next()
	if tok.Kind != KindComment {
		t.Errorf("Skip over author landed on %v, want comment", tok.Kind)
	}
	// Skip after a non-open token (the comment) is a no-op.
	if err := sc.Skip(); err != nil {
		t.Fatal(err)
	}
	tok, _, _ = sc.Next()
	if tok.Kind != KindPI {
		t.Errorf("no-op Skip: got %v, want pi", tok.Kind)
	}
}

func TestSliceIteratorSkip(t *testing.T) {
	doc := sampleDoc(t)
	toks, _ := Materialize(NewDocScanner(doc, 0))
	it := NewSliceIterator(toks)
	if err := it.Open(); err != nil {
		t.Fatal(err)
	}
	for {
		tok, ok, _ := it.Next()
		if !ok {
			t.Fatal("no title")
		}
		if tok.Kind == KindStartElement && tok.Name.Local == "title" {
			break
		}
	}
	if err := it.Skip(); err != nil {
		t.Fatal(err)
	}
	tok, _, _ := it.Next()
	if tok.Kind != KindStartElement || tok.Name.Local != "author" {
		t.Errorf("slice Skip landed on %v %v", tok.Kind, tok.Name)
	}
}

func TestBuildDocumentRoundTrip(t *testing.T) {
	doc := sampleDoc(t)
	toks, _ := Materialize(NewDocScanner(doc, 0))
	doc2, err := BuildDocument(NewSliceIterator(toks), store.BuilderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	toks2, _ := Materialize(NewDocScanner(doc2, 0))
	if len(toks) != len(toks2) {
		t.Fatalf("round trip token count %d != %d", len(toks2), len(toks))
	}
	for i := range toks {
		a, b := toks[i], toks2[i]
		if a.Kind != b.Kind || !a.Name.Equal(b.Name) || a.Value != b.Value {
			t.Errorf("token %d: %+v != %+v", i, a, b)
		}
	}
}

func TestBufferFactory(t *testing.T) {
	doc := sampleDoc(t)
	f := NewBufferFactory(NewDocScanner(doc, 0))
	c1, err := f.Consumer()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := f.Consumer()
	if err != nil {
		t.Fatal(err)
	}
	t1, _ := Materialize(c1)
	t2, _ := Materialize(c2)
	if len(t1) != len(t2) || len(t1) == 0 {
		t.Errorf("consumers disagree: %d vs %d", len(t1), len(t2))
	}
}

func TestSerializeStream(t *testing.T) {
	doc := sampleDoc(t)
	var sb strings.Builder
	if err := SerializeStream(NewDocScanner(doc, 0), &sb); err != nil {
		t.Fatal(err)
	}
	want := `<book year="1967"><title>No Kidding</title><author>Whoever</author><!--c--><?pi data?></book>`
	if sb.String() != want {
		t.Errorf("got %q, want %q", sb.String(), want)
	}
}

func TestStreamWriterMatchesSerializeStream(t *testing.T) {
	doc := sampleDoc(t)
	var a strings.Builder
	if err := SerializeStream(NewDocScanner(doc, 0), &a); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	sw := NewStreamWriter(&b)
	sc := NewDocScanner(doc, 0)
	sc.Open()
	for {
		tok, ok, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if err := sw.WriteToken(tok); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("pull %q != push %q", a.String(), b.String())
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	doc := sampleDoc(t)
	for _, opts := range []EncodeOptions{
		{},
		{PoolNames: true},
		{PoolNames: true, PoolValues: true},
	} {
		var buf bytes.Buffer
		enc := NewEncoder(&buf, opts)
		if err := enc.EncodeStream(NewDocScanner(doc, 0)); err != nil {
			t.Fatal(err)
		}
		dec := NewDecoder(&buf)
		got, err := Materialize(dec)
		if err != nil {
			t.Fatalf("decode (%+v): %v", opts, err)
		}
		want, _ := Materialize(NewDocScanner(doc, 0))
		if len(got) != len(want) {
			t.Fatalf("binary round trip count %d != %d (opts %+v)", len(got), len(want), opts)
		}
		for i := range want {
			if got[i].Kind != want[i].Kind || !got[i].Name.Equal(want[i].Name) || got[i].Value != want[i].Value {
				t.Errorf("token %d: %+v != %+v", i, got[i], want[i])
			}
		}
	}
}

func TestBinaryPoolingShrinks(t *testing.T) {
	b := store.NewBuilder(store.BuilderOptions{})
	b.StartElement(xdm.LocalName("root"))
	for i := 0; i < 500; i++ {
		b.StartElement(xdm.LocalName("very-repetitive-element-name"))
		b.Text("identical value")
		b.EndElement()
	}
	b.EndElement()
	doc, _ := b.Done()

	size := func(opts EncodeOptions) int {
		var buf bytes.Buffer
		enc := NewEncoder(&buf, opts)
		if err := enc.EncodeStream(NewDocScanner(doc, 0)); err != nil {
			t.Fatal(err)
		}
		return buf.Len()
	}
	raw := size(EncodeOptions{})
	pooled := size(EncodeOptions{PoolNames: true, PoolValues: true})
	if pooled*3 > raw {
		t.Errorf("pooling too weak: %d pooled vs %d raw", pooled, raw)
	}
}

func TestDecoderSkip(t *testing.T) {
	doc := sampleDoc(t)
	var buf bytes.Buffer
	if err := NewEncoder(&buf, EncodeOptions{PoolNames: true}).EncodeStream(NewDocScanner(doc, 0)); err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder(&buf)
	for {
		tok, ok, err := dec.Next()
		if err != nil || !ok {
			t.Fatal("no title found")
		}
		if tok.Kind == KindStartElement && tok.Name.Local == "title" {
			break
		}
	}
	if err := dec.Skip(); err != nil {
		t.Fatal(err)
	}
	tok, _, err := dec.Next()
	if err != nil {
		t.Fatal(err)
	}
	if tok.Kind != KindStartElement || tok.Name.Local != "author" {
		t.Errorf("decoder Skip landed on %v %v", tok.Kind, tok.Name)
	}
}

// Property: random small trees survive scanner -> binary -> decoder -> build
// round trips with identical token streams.
func TestBinaryRoundTripQuick(t *testing.T) {
	f := func(shape []uint8, pool bool) bool {
		if len(shape) > 30 {
			shape = shape[:30]
		}
		b := store.NewBuilder(store.BuilderOptions{})
		b.StartElement(xdm.LocalName("r"))
		depth := 1
		names := []string{"a", "b", "c"}
		for i, op := range shape {
			switch op % 4 {
			case 0:
				b.StartElement(xdm.LocalName(names[int(op/4)%3]))
				depth++
			case 1:
				if depth > 1 {
					b.EndElement()
					depth--
				}
			case 2:
				b.Text("t" + string(rune('a'+i%26)))
			case 3:
				if err := b.Attr(xdm.LocalName("x"+string(rune('a'+i%26))), "v"); err != nil {
					b.Text("dup")
				}
			}
		}
		for depth > 0 {
			b.EndElement()
			depth--
		}
		doc, err := b.Done()
		if err != nil {
			return false
		}
		want, err := Materialize(NewDocScanner(doc, 0))
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := NewEncoder(&buf, EncodeOptions{PoolNames: pool, PoolValues: pool}).
			EncodeStream(NewDocScanner(doc, 0)); err != nil {
			return false
		}
		got, err := Materialize(NewDecoder(&buf))
		if err != nil || len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i].Kind != want[i].Kind || !got[i].Name.Equal(want[i].Name) || got[i].Value != want[i].Value {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
