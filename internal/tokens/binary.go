package tokens

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"xqgo/internal/xdm"
)

// Binary token-stream encoding ("Disk: binary representation (compressed)").
// Each token is an opcode byte plus payload. With pooling enabled, QNames
// and string values are dictionary-compressed: the first occurrence defines
// a dictionary entry in-band (the paper's "special pragma tokens"), later
// occurrences are varint references.

// EncodeOptions configure binary encoding.
type EncodeOptions struct {
	// PoolNames dictionary-compresses QNames.
	PoolNames bool
	// PoolValues dictionary-compresses text and attribute values.
	PoolValues bool
}

// Encoder writes tokens in the binary format.
type Encoder struct {
	w      *bufio.Writer
	opts   EncodeOptions
	names  map[nameKey]uint64
	values map[string]uint64
	err    error
}

type nameKey struct{ space, local string }

// NewEncoder creates an Encoder.
func NewEncoder(w io.Writer, opts EncodeOptions) *Encoder {
	return &Encoder{
		w:      bufio.NewWriter(w),
		opts:   opts,
		names:  make(map[nameKey]uint64),
		values: make(map[string]uint64),
	}
}

const (
	opStartDoc = iota + 1
	opEndDoc
	opStartElem
	opEndElem
	opAttr
	opNS
	opText
	opComment
	opPI
	opAtomic
)

func (e *Encoder) byte(b byte) {
	if e.err == nil {
		e.err = e.w.WriteByte(b)
	}
}

func (e *Encoder) uvarint(v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	if e.err == nil {
		_, e.err = e.w.Write(buf[:n])
	}
}

func (e *Encoder) rawString(s string) {
	e.uvarint(uint64(len(s)))
	if e.err == nil {
		_, e.err = e.w.WriteString(s)
	}
}

// pooledString writes either a back-reference (tag = id+2) or an inline
// definition (tag 1 followed by the bytes, which also defines dictionary
// entry len(pool)); tag 0 is reserved for "" to keep empty strings free.
func (e *Encoder) pooledString(s string, pool map[string]uint64, enabled bool) {
	if s == "" {
		e.uvarint(0)
		return
	}
	if enabled {
		if id, ok := pool[s]; ok {
			e.uvarint(id + 2)
			return
		}
		pool[s] = uint64(len(pool))
	}
	e.uvarint(1)
	e.rawString(s)
}

func (e *Encoder) name(q xdm.QName) {
	if e.opts.PoolNames {
		k := nameKey{q.Space, q.Local}
		if id, ok := e.names[k]; ok {
			e.uvarint(id + 2)
			return
		}
		e.names[k] = uint64(len(e.names))
	}
	e.uvarint(1)
	e.rawString(q.Space)
	e.rawString(q.Local)
}

// Encode writes one token.
func (e *Encoder) Encode(t Token) error {
	switch t.Kind {
	case KindStartDocument:
		e.byte(opStartDoc)
	case KindEndDocument:
		e.byte(opEndDoc)
	case KindStartElement:
		e.byte(opStartElem)
		e.name(t.Name)
	case KindEndElement:
		e.byte(opEndElem)
	case KindAttribute:
		e.byte(opAttr)
		e.name(t.Name)
		e.pooledString(t.Value, e.values, e.opts.PoolValues)
	case KindNamespace:
		e.byte(opNS)
		e.rawString(t.Name.Local)
		e.rawString(t.Value)
	case KindText:
		e.byte(opText)
		e.pooledString(t.Value, e.values, e.opts.PoolValues)
	case KindComment:
		e.byte(opComment)
		e.rawString(t.Value)
	case KindPI:
		e.byte(opPI)
		e.rawString(t.Name.Local)
		e.rawString(t.Value)
	case KindAtomic:
		e.byte(opAtomic)
		e.byte(byte(t.Atom.T))
		e.rawString(t.Atom.Lexical())
	default:
		return fmt.Errorf("tokens: cannot encode token kind %v", t.Kind)
	}
	return e.err
}

// EncodeStream drains an iterator into the encoder and flushes.
func (e *Encoder) EncodeStream(it Iterator) error {
	if err := it.Open(); err != nil {
		return err
	}
	defer it.Close()
	for {
		t, ok, err := it.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if err := e.Encode(t); err != nil {
			return err
		}
	}
	return e.Flush()
}

// Flush flushes buffered output.
func (e *Encoder) Flush() error {
	if e.err != nil {
		return e.err
	}
	return e.w.Flush()
}

// Decoder reads the binary format as a token Iterator. EndElement names
// (not stored in the encoding) are reconstructed from an element stack so
// the decoded stream is token-identical to the encoded one.
type Decoder struct {
	r      *bufio.Reader
	names  []xdm.QName
	values []string
	open   []xdm.QName
	// skip support: depth bookkeeping
	lastWasStart bool
	depthAtStart int
	depth        int
}

// NewDecoder creates a Decoder over binary token data.
func NewDecoder(r io.Reader) *Decoder { return &Decoder{r: bufio.NewReader(r)} }

// Open implements Iterator.
func (d *Decoder) Open() error { return nil }

// Close implements Iterator.
func (d *Decoder) Close() {}

func (d *Decoder) rawString() (string, error) {
	n, err := binary.ReadUvarint(d.r)
	if err != nil {
		return "", err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(d.r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func (d *Decoder) pooledString() (string, error) {
	tag, err := binary.ReadUvarint(d.r)
	if err != nil {
		return "", err
	}
	switch tag {
	case 0:
		return "", nil
	case 1:
		s, err := d.rawString()
		if err != nil {
			return "", err
		}
		d.values = append(d.values, s)
		return s, nil
	default:
		id := tag - 2
		if id >= uint64(len(d.values)) {
			return "", fmt.Errorf("tokens: bad string back-reference %d", id)
		}
		return d.values[id], nil
	}
}

func (d *Decoder) name() (xdm.QName, error) {
	tag, err := binary.ReadUvarint(d.r)
	if err != nil {
		return xdm.QName{}, err
	}
	if tag == 1 {
		space, err := d.rawString()
		if err != nil {
			return xdm.QName{}, err
		}
		local, err := d.rawString()
		if err != nil {
			return xdm.QName{}, err
		}
		q := xdm.QName{Space: space, Local: local}
		d.names = append(d.names, q)
		return q, nil
	}
	id := tag - 2
	if id >= uint64(len(d.names)) {
		return xdm.QName{}, fmt.Errorf("tokens: bad name back-reference %d", id)
	}
	return d.names[id], nil
}

// Next implements Iterator.
func (d *Decoder) Next() (Token, bool, error) {
	op, err := d.r.ReadByte()
	if err == io.EOF {
		return Token{}, false, nil
	}
	if err != nil {
		return Token{}, false, err
	}
	d.lastWasStart = false
	switch op {
	case opStartDoc:
		d.depth++
		d.lastWasStart = true
		d.depthAtStart = d.depth
		return Token{Kind: KindStartDocument}, true, nil
	case opEndDoc:
		d.depth--
		return Token{Kind: KindEndDocument}, true, nil
	case opStartElem:
		q, err := d.name()
		if err != nil {
			return Token{}, false, err
		}
		d.depth++
		d.lastWasStart = true
		d.depthAtStart = d.depth
		d.open = append(d.open, q)
		return Token{Kind: KindStartElement, Name: q}, true, nil
	case opEndElem:
		d.depth--
		var q xdm.QName
		if n := len(d.open); n > 0 {
			q = d.open[n-1]
			d.open = d.open[:n-1]
		}
		return Token{Kind: KindEndElement, Name: q}, true, nil
	case opAttr:
		q, err := d.name()
		if err != nil {
			return Token{}, false, err
		}
		v, err := d.pooledString()
		if err != nil {
			return Token{}, false, err
		}
		return Token{Kind: KindAttribute, Name: q, Value: v}, true, nil
	case opNS:
		p, err := d.rawString()
		if err != nil {
			return Token{}, false, err
		}
		u, err := d.rawString()
		if err != nil {
			return Token{}, false, err
		}
		return Token{Kind: KindNamespace, Name: xdm.LocalName(p), Value: u}, true, nil
	case opText:
		v, err := d.pooledString()
		if err != nil {
			return Token{}, false, err
		}
		return Token{Kind: KindText, Value: v}, true, nil
	case opComment:
		v, err := d.rawString()
		if err != nil {
			return Token{}, false, err
		}
		return Token{Kind: KindComment, Value: v}, true, nil
	case opPI:
		target, err := d.rawString()
		if err != nil {
			return Token{}, false, err
		}
		v, err := d.rawString()
		if err != nil {
			return Token{}, false, err
		}
		return Token{Kind: KindPI, Name: xdm.LocalName(target), Value: v}, true, nil
	case opAtomic:
		tc, err := d.r.ReadByte()
		if err != nil {
			return Token{}, false, err
		}
		lex, err := d.rawString()
		if err != nil {
			return Token{}, false, err
		}
		a, err := xdm.Cast(xdm.NewString(lex), xdm.TypeCode(tc))
		if err != nil {
			return Token{}, false, err
		}
		return Token{Kind: KindAtomic, Atom: a}, true, nil
	default:
		return Token{}, false, fmt.Errorf("tokens: bad opcode %d", op)
	}
}

// Skip implements Iterator by reading and discarding tokens until the
// subtree opened by the last Start token is closed.
func (d *Decoder) Skip() error {
	if !d.lastWasStart {
		return nil
	}
	target := d.depthAtStart - 1
	for d.depth > target {
		_, ok, err := d.Next()
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("tokens: EOF during Skip")
		}
	}
	return nil
}
