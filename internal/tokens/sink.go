package tokens

import (
	"fmt"
	"io"
	"strings"

	"xqgo/internal/store"
	"xqgo/internal/xdm"
)

// BuildDocument drains an iterator into a new store document, assigning node
// identifiers — the materializing sink.
func BuildDocument(it Iterator, opts store.BuilderOptions) (*store.Document, error) {
	b := store.NewBuilder(opts)
	if err := it.Open(); err != nil {
		return nil, err
	}
	defer it.Close()
	for {
		t, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		switch t.Kind {
		case KindStartDocument:
			b.StartDocument()
		case KindEndDocument, KindEndElement:
			if t.Kind == KindEndElement {
				b.EndElement()
			}
		case KindStartElement:
			b.StartElement(t.Name)
		case KindAttribute:
			if err := b.Attr(t.Name, t.Value); err != nil {
				return nil, err
			}
		case KindNamespace:
			b.NSDecl(t.Name.Local, t.Value)
		case KindText:
			b.Text(t.Value)
		case KindComment:
			b.Comment(t.Value)
		case KindPI:
			b.PI(t.Name.Local, t.Value)
		case KindAtomic:
			b.Text(t.Atom.Lexical())
		default:
			return nil, fmt.Errorf("tokens: unexpected token %v in document build", t.Kind)
		}
	}
	return b.Done()
}

// SerializeStream writes a token stream directly as XML text without
// materializing a document — the "node identifiers only if really needed"
// path: when a constructed result is immediately serialized, no ids, no
// store, no tree are ever created.
func SerializeStream(it Iterator, w io.Writer) error {
	if err := it.Open(); err != nil {
		return err
	}
	defer it.Close()
	var openTag bool // inside a start tag, attributes still allowed
	var stack []string
	prevAtomic := false

	write := func(s string) error {
		_, err := io.WriteString(w, s)
		return err
	}
	closeOpenTag := func() error {
		if openTag {
			openTag = false
			return write(">")
		}
		return nil
	}

	for {
		t, ok, err := it.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if t.Kind != KindAtomic {
			prevAtomic = false
		}
		switch t.Kind {
		case KindStartDocument, KindEndDocument:
			// transparent in text output
		case KindStartElement:
			if err := closeOpenTag(); err != nil {
				return err
			}
			tag := lexicalName(t.Name)
			if err := write("<" + tag); err != nil {
				return err
			}
			if t.Name.Space != "" && t.Name.Prefix == "" {
				if err := write(` xmlns="` + escapeAttr(t.Name.Space) + `"`); err != nil {
					return err
				}
			}
			stack = append(stack, tag)
			openTag = true
		case KindEndElement:
			if len(stack) == 0 {
				return fmt.Errorf("tokens: unbalanced end element")
			}
			tag := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if openTag {
				openTag = false
				if err := write("/>"); err != nil {
					return err
				}
			} else if err := write("</" + tag + ">"); err != nil {
				return err
			}
		case KindAttribute:
			if !openTag {
				return fmt.Errorf("tokens: attribute %s after element content", t.Name)
			}
			if err := write(" " + lexicalName(t.Name) + `="` + escapeAttr(t.Value) + `"`); err != nil {
				return err
			}
		case KindNamespace:
			if !openTag {
				return fmt.Errorf("tokens: namespace token after element content")
			}
			name := "xmlns"
			if t.Name.Local != "" {
				name += ":" + t.Name.Local
			}
			if err := write(" " + name + `="` + escapeAttr(t.Value) + `"`); err != nil {
				return err
			}
		case KindText:
			if err := closeOpenTag(); err != nil {
				return err
			}
			if err := write(escapeText(t.Value)); err != nil {
				return err
			}
		case KindComment:
			if err := closeOpenTag(); err != nil {
				return err
			}
			if err := write("<!--" + t.Value + "-->"); err != nil {
				return err
			}
		case KindPI:
			if err := closeOpenTag(); err != nil {
				return err
			}
			if err := write("<?" + t.Name.Local + " " + t.Value + "?>"); err != nil {
				return err
			}
		case KindAtomic:
			if err := closeOpenTag(); err != nil {
				return err
			}
			if prevAtomic {
				if err := write(" "); err != nil {
					return err
				}
			}
			if err := write(escapeText(t.Atom.Lexical())); err != nil {
				return err
			}
			prevAtomic = true
		}
	}
	if len(stack) != 0 {
		return fmt.Errorf("tokens: %d unclosed element(s)", len(stack))
	}
	return nil
}

func lexicalName(q xdm.QName) string {
	if q.Prefix != "" {
		return q.Prefix + ":" + q.Local
	}
	return q.Local
}

var textEscaper = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")

var attrEscaper = strings.NewReplacer(
	"&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;",
)

func escapeText(s string) string { return textEscaper.Replace(s) }

func escapeAttr(s string) string { return attrEscaper.Replace(s) }
