// Package tokens implements the BEA/XQRL TokenStream and TokenIterator: an
// XDM instance represented as a flat sequence of fine-grained tokens (the
// "array" storage mode of the paper), plus a pull-based iterator contract
// with open/next/skip/close. skip() is the remedy the paper introduces for
// the low granularity of tokens: it advances past the current subtree
// without producing its tokens, and over array-backed sources it is O(1).
//
// The package also provides the buffer-iterator factory used for common
// sub-expressions and a binary encoding with dictionary pooling
// ("Optimizing the TokenStream: Tips & Tricks").
package tokens

import "xqgo/internal/xdm"

// Kind enumerates token kinds.
type Kind uint8

const (
	// KindInvalid is the zero token.
	KindInvalid Kind = iota
	// KindStartDocument / KindEndDocument bracket a document node.
	KindStartDocument
	KindEndDocument
	// KindStartElement / KindEndElement bracket an element; StartElement
	// carries the name.
	KindStartElement
	KindEndElement
	// KindAttribute carries a (name, value) pair; attribute tokens follow
	// their StartElement immediately.
	KindAttribute
	// KindNamespace carries a prefix (in Name.Local) and URI (in Value).
	KindNamespace
	// KindText carries character content.
	KindText
	// KindComment and KindPI carry the respective node content.
	KindComment
	KindPI
	// KindAtomic carries an atomic value: sequences are heterogeneous, so
	// atomic items travel in the same stream as node markup.
	KindAtomic
)

var kindNames = [...]string{
	"invalid", "startDocument", "endDocument", "startElement", "endElement",
	"attribute", "namespace", "text", "comment", "pi", "atomic",
}

func (k Kind) String() string { return kindNames[k] }

// Token is one event of a token stream.
type Token struct {
	Kind  Kind
	Name  xdm.QName  // element/attribute/PI name; namespace prefix
	Value string     // text/attribute/comment/PI content; namespace URI
	Atom  xdm.Atomic // payload of KindAtomic
}

// Iterator is the pull interface of the paper's extended iterator model.
//
//	open()  — prepare execution, allocate resources
//	next()  — return the next token; ok=false at end of stream
//	skip()  — skip all remaining tokens of the current subtree: after a
//	          StartElement/StartDocument token was returned, Skip advances
//	          just past the matching End token
//	close() — release resources
type Iterator interface {
	Open() error
	Next() (Token, bool, error)
	Skip() error
	Close()
}
