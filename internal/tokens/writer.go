package tokens

import (
	"fmt"
	"io"
)

// StreamWriter is the push-mode twin of SerializeStream: tokens are written
// one at a time and serialized to XML text immediately, with no tree and no
// node identifiers in between.
type StreamWriter struct {
	w          io.Writer
	openTag    bool
	stack      []string
	prevAtomic bool
	err        error
}

// NewStreamWriter creates a StreamWriter.
func NewStreamWriter(w io.Writer) *StreamWriter { return &StreamWriter{w: w} }

func (s *StreamWriter) write(t string) {
	if s.err == nil {
		_, s.err = io.WriteString(s.w, t)
	}
}

func (s *StreamWriter) closeOpenTag() {
	if s.openTag {
		s.openTag = false
		s.write(">")
	}
}

// WriteToken serializes one token.
func (s *StreamWriter) WriteToken(t Token) error {
	if s.err != nil {
		return s.err
	}
	if t.Kind != KindAtomic {
		s.prevAtomic = false
	}
	switch t.Kind {
	case KindStartDocument, KindEndDocument:
	case KindStartElement:
		s.closeOpenTag()
		tag := lexicalName(t.Name)
		s.write("<" + tag)
		if t.Name.Space != "" && t.Name.Prefix == "" {
			s.write(` xmlns="` + escapeAttr(t.Name.Space) + `"`)
		}
		s.stack = append(s.stack, tag)
		s.openTag = true
	case KindEndElement:
		if len(s.stack) == 0 {
			s.err = fmt.Errorf("tokens: unbalanced end element")
			return s.err
		}
		tag := s.stack[len(s.stack)-1]
		s.stack = s.stack[:len(s.stack)-1]
		if s.openTag {
			s.openTag = false
			s.write("/>")
		} else {
			s.write("</" + tag + ">")
		}
	case KindAttribute:
		if !s.openTag {
			s.err = fmt.Errorf("tokens: attribute %s after element content", t.Name)
			return s.err
		}
		s.write(" " + lexicalName(t.Name) + `="` + escapeAttr(t.Value) + `"`)
	case KindNamespace:
		if !s.openTag {
			s.err = fmt.Errorf("tokens: namespace token after element content")
			return s.err
		}
		name := "xmlns"
		if t.Name.Local != "" {
			name += ":" + t.Name.Local
		}
		s.write(" " + name + `="` + escapeAttr(t.Value) + `"`)
	case KindText:
		s.closeOpenTag()
		s.write(escapeText(t.Value))
	case KindComment:
		s.closeOpenTag()
		s.write("<!--" + t.Value + "-->")
	case KindPI:
		s.closeOpenTag()
		s.write("<?" + t.Name.Local + " " + t.Value + "?>")
	case KindAtomic:
		s.closeOpenTag()
		if s.prevAtomic {
			s.write(" ")
		}
		s.write(escapeText(t.Atom.Lexical()))
		s.prevAtomic = true
	}
	return s.err
}

// Close verifies balance and returns any pending error.
func (s *StreamWriter) Close() error {
	if s.err != nil {
		return s.err
	}
	if len(s.stack) != 0 {
		return fmt.Errorf("tokens: %d unclosed element(s)", len(s.stack))
	}
	return nil
}
