package xtypes

import (
	"testing"

	"xqgo/internal/xdm"
)

// fakeNode is a minimal node for matching tests.
type fakeNode struct {
	kind xdm.NodeKind
	name xdm.QName
}

func (f *fakeNode) IsNode() bool              { return true }
func (f *fakeNode) Kind() xdm.NodeKind        { return f.kind }
func (f *fakeNode) NodeName() xdm.QName       { return f.name }
func (f *fakeNode) StringValue() string       { return "" }
func (f *fakeNode) TypedValue() xdm.Atomic    { return xdm.NewUntyped("") }
func (f *fakeNode) Parent() xdm.Node          { return nil }
func (f *fakeNode) ChildrenOf() []xdm.Node    { return nil }
func (f *fakeNode) AttributesOf() []xdm.Node  { return nil }
func (f *fakeNode) BaseURI() string           { return "" }
func (f *fakeNode) SameNode(o xdm.Node) bool  { return xdm.Node(f) == o }
func (f *fakeNode) OrderKey() (uint64, int64) { return 0, 0 }
func (f *fakeNode) Root() xdm.Node            { return f }

func node(kind xdm.NodeKind, name string) *fakeNode {
	return &fakeNode{kind: kind, name: xdm.LocalName(name)}
}

func TestItemTypeMatching(t *testing.T) {
	elemA := node(xdm.ElementNode, "a")
	attrX := node(xdm.AttributeNode, "x")
	text := node(xdm.TextNode, "")
	docN := node(xdm.DocumentNode, "")

	cases := []struct {
		it   ItemType
		item xdm.Item
		want bool
	}{
		{ItemType{Kind: KAnyItem}, xdm.NewInteger(1), true},
		{ItemType{Kind: KAnyItem}, elemA, true},
		{ItemType{Kind: KAtomic, Type: xdm.TInteger}, xdm.NewInteger(1), true},
		{ItemType{Kind: KAtomic, Type: xdm.TDecimal}, xdm.NewInteger(1), true}, // derivation
		{ItemType{Kind: KAtomic, Type: xdm.TInteger}, xdm.NewString("x"), false},
		{ItemType{Kind: KAtomic, Type: xdm.TAnyAtomic}, xdm.NewString("x"), true},
		{ItemType{Kind: KAtomic, Type: xdm.TInteger}, elemA, false},
		{ItemType{Kind: KAnyNode}, elemA, true},
		{ItemType{Kind: KAnyNode}, xdm.NewInteger(1), false},
		{ItemType{Kind: KElement, AnyName: true}, elemA, true},
		{ItemType{Kind: KElement, Name: xdm.LocalName("a")}, elemA, true},
		{ItemType{Kind: KElement, Name: xdm.LocalName("b")}, elemA, false},
		{ItemType{Kind: KElement}, attrX, false},
		{ItemType{Kind: KAttribute, Name: xdm.LocalName("x")}, attrX, true},
		{ItemType{Kind: KText}, text, true},
		{ItemType{Kind: KDocument}, docN, true},
		{ItemType{Kind: KDocument}, elemA, false},
	}
	for i, c := range cases {
		if got := c.it.MatchesItem(c.item); got != c.want {
			t.Errorf("case %d: %s matches %v = %v, want %v", i, c.it, c.item, got, c.want)
		}
	}
}

func TestSequenceTypeMatching(t *testing.T) {
	ints := xdm.Sequence{xdm.NewInteger(1), xdm.NewInteger(2)}
	cases := []struct {
		st   SequenceType
		seq  xdm.Sequence
		want bool
	}{
		{Empty, nil, true},
		{Empty, ints, false},
		{AtomicOne(xdm.TInteger), ints[:1], true},
		{AtomicOne(xdm.TInteger), ints, false},
		{AtomicOne(xdm.TInteger), nil, false},
		{AtomicOpt(xdm.TInteger), nil, true},
		{AtomicOpt(xdm.TInteger), ints, false},
		{AtomicStar(xdm.TInteger), ints, true},
		{AtomicStar(xdm.TInteger), nil, true},
		{SequenceType{Occ: OccPlus, Item: ItemType{Kind: KAtomic, Type: xdm.TInteger}}, nil, false},
		{SequenceType{Occ: OccPlus, Item: ItemType{Kind: KAtomic, Type: xdm.TInteger}}, ints, true},
		{AtomicStar(xdm.TInteger), xdm.Sequence{xdm.NewString("x")}, false},
	}
	for i, c := range cases {
		if got := c.st.Matches(c.seq); got != c.want {
			t.Errorf("case %d: %s matches %v = %v, want %v", i, c.st, c.seq, got, c.want)
		}
	}
}

func TestNodeTestMatching(t *testing.T) {
	elemA := node(xdm.ElementNode, "a")
	elemNS := &fakeNode{kind: xdm.ElementNode, name: xdm.Name("urn:n", "a")}
	attrA := node(xdm.AttributeNode, "a")
	pi := node(xdm.PINode, "target")

	cases := []struct {
		nt        NodeTest
		n         xdm.Node
		principal xdm.NodeKind
		want      bool
	}{
		{NodeTest{Name: xdm.LocalName("a")}, elemA, xdm.ElementNode, true},
		{NodeTest{Name: xdm.LocalName("b")}, elemA, xdm.ElementNode, false},
		{NodeTest{Name: xdm.LocalName("a")}, elemA, xdm.AttributeNode, false}, // principal kind
		{NodeTest{Name: xdm.LocalName("a")}, attrA, xdm.AttributeNode, true},
		{NodeTest{AnyName: true}, elemA, xdm.ElementNode, true},
		{NodeTest{WildSpace: true, Name: xdm.LocalName("a")}, elemNS, xdm.ElementNode, true},
		{NodeTest{WildLocal: true, Name: xdm.QName{Space: "urn:n"}}, elemNS, xdm.ElementNode, true},
		{NodeTest{WildLocal: true, Name: xdm.QName{Space: "urn:other"}}, elemNS, xdm.ElementNode, false},
		{NodeTest{Kind: TestAnyKind}, pi, xdm.ElementNode, true},
		{NodeTest{Kind: TestPI, AnyName: true}, pi, xdm.ElementNode, true},
		{NodeTest{Kind: TestPI, Name: xdm.LocalName("target")}, pi, xdm.ElementNode, true},
		{NodeTest{Kind: TestPI, Name: xdm.LocalName("other")}, pi, xdm.ElementNode, false},
		{NodeTest{Kind: TestElement, AnyName: true}, elemA, xdm.ElementNode, true},
		{NodeTest{Kind: TestElement, AnyName: true}, attrA, xdm.ElementNode, false},
	}
	for i, c := range cases {
		if got := c.nt.MatchesNode(c.n, c.principal); got != c.want {
			t.Errorf("case %d: %s matches %v (principal %v) = %v, want %v",
				i, c.nt, c.n.NodeName(), c.principal, got, c.want)
		}
	}
}

func TestSubtypeOf(t *testing.T) {
	intOne := AtomicOne(xdm.TInteger)
	decOne := AtomicOne(xdm.TDecimal)
	intStar := AtomicStar(xdm.TInteger)
	intPlus := SequenceType{Occ: OccPlus, Item: ItemType{Kind: KAtomic, Type: xdm.TInteger}}
	elemAny := SequenceType{Occ: OccOne, Item: ItemType{Kind: KElement, AnyName: true}}
	elemA := SequenceType{Occ: OccOne, Item: ItemType{Kind: KElement, Name: xdm.LocalName("a")}}
	nodeOne := SequenceType{Occ: OccOne, Item: ItemType{Kind: KAnyNode}}

	cases := []struct {
		a, b SequenceType
		want bool
	}{
		{intOne, intOne, true},
		{intOne, decOne, true}, // integer <: decimal
		{decOne, intOne, false},
		{intOne, intStar, true},
		{intStar, intOne, false},
		{intPlus, intStar, true},
		{intStar, intPlus, false},
		{intOne, AnyItems, true},
		{elemA, elemAny, true},
		{elemAny, elemA, false},
		{elemA, nodeOne, true},
		{nodeOne, elemA, false},
		{Empty, intStar, true},
		{Empty, intOne, false},
	}
	for i, c := range cases {
		if got := c.a.SubtypeOf(c.b); got != c.want {
			t.Errorf("case %d: %s subtype of %s = %v, want %v", i, c.a, c.b, got, c.want)
		}
	}
}

func TestStrings(t *testing.T) {
	if Empty.String() != "empty-sequence()" {
		t.Error(Empty.String())
	}
	if got := AtomicStar(xdm.TInteger).String(); got != "xs:integer*" {
		t.Error(got)
	}
	st := SequenceType{Occ: OccOpt, Item: ItemType{Kind: KElement, Name: xdm.LocalName("a")}}
	if st.String() != "element(a)?" {
		t.Error(st.String())
	}
	nt := NodeTest{Kind: TestPI, Name: xdm.LocalName("t")}
	if nt.String() != "processing-instruction(t)" {
		t.Error(nt.String())
	}
	if (NodeTest{WildSpace: true, Name: xdm.LocalName("l")}).String() != "*:l" {
		t.Error("wildspace string")
	}
}
