// Package xtypes implements the XQuery sequence-type system used by
// `instance of`, `typeswitch`, `cast`/`castable`/`treat`, function
// signatures, and node tests in path steps: item types with occurrence
// indicators, kind tests, and the subtype/matching relations.
package xtypes

import (
	"strings"

	"xqgo/internal/xdm"
)

// Occurrence is the cardinality indicator of a sequence type.
type Occurrence uint8

const (
	OccOne   Occurrence = iota // exactly one
	OccOpt                     // ? zero or one
	OccStar                    // * zero or more
	OccPlus                    // + one or more
	OccEmpty                   // empty-sequence()
)

func (o Occurrence) String() string {
	switch o {
	case OccOpt:
		return "?"
	case OccStar:
		return "*"
	case OccPlus:
		return "+"
	default:
		return ""
	}
}

// ItemKind discriminates the item-type alternatives.
type ItemKind uint8

const (
	KAnyItem   ItemKind = iota // item()
	KAtomic                    // a named atomic type
	KAnyNode                   // node()
	KDocument                  // document-node()
	KElement                   // element() / element(name)
	KAttribute                 // attribute() / attribute(name)
	KText                      // text()
	KComment                   // comment()
	KPI                        // processing-instruction() / ...(name)
)

// ItemType is one item type: an atomic type or a kind test.
type ItemType struct {
	Kind ItemKind
	// Atomic type for KAtomic.
	Type xdm.TypeCode
	// Name constraint for element/attribute/PI tests; zero means any name.
	Name    xdm.QName
	AnyName bool // explicit wildcard (element(*))
}

// SequenceType is an item type with an occurrence indicator.
type SequenceType struct {
	Occ  Occurrence
	Item ItemType
}

// Convenience constructors.

// AnyItems is item()*.
var AnyItems = SequenceType{Occ: OccStar, Item: ItemType{Kind: KAnyItem}}

// AtomicOne returns "T" as a sequence type.
func AtomicOne(t xdm.TypeCode) SequenceType {
	return SequenceType{Occ: OccOne, Item: ItemType{Kind: KAtomic, Type: t}}
}

// AtomicOpt returns "T?".
func AtomicOpt(t xdm.TypeCode) SequenceType {
	return SequenceType{Occ: OccOpt, Item: ItemType{Kind: KAtomic, Type: t}}
}

// AtomicStar returns "T*".
func AtomicStar(t xdm.TypeCode) SequenceType {
	return SequenceType{Occ: OccStar, Item: ItemType{Kind: KAtomic, Type: t}}
}

// NodeStar is node()*.
var NodeStar = SequenceType{Occ: OccStar, Item: ItemType{Kind: KAnyNode}}

// Empty is empty-sequence().
var Empty = SequenceType{Occ: OccEmpty, Item: ItemType{Kind: KAnyItem}}

// String renders the type in XQuery syntax.
func (s SequenceType) String() string {
	if s.Occ == OccEmpty {
		return "empty-sequence()"
	}
	return s.Item.String() + s.Occ.String()
}

// String renders the item type in XQuery syntax.
func (t ItemType) String() string {
	switch t.Kind {
	case KAnyItem:
		return "item()"
	case KAtomic:
		return t.Type.String()
	case KAnyNode:
		return "node()"
	case KDocument:
		return "document-node()"
	case KElement:
		return kindTestString("element", t)
	case KAttribute:
		return kindTestString("attribute", t)
	case KText:
		return "text()"
	case KComment:
		return "comment()"
	case KPI:
		return kindTestString("processing-instruction", t)
	default:
		return "item()"
	}
}

func kindTestString(kw string, t ItemType) string {
	var b strings.Builder
	b.WriteString(kw)
	b.WriteByte('(')
	if !t.AnyName && !t.Name.IsZero() {
		b.WriteString(t.Name.String())
	}
	b.WriteByte(')')
	return b.String()
}

// MatchesItem reports whether a single item matches the item type.
func (t ItemType) MatchesItem(it xdm.Item) bool {
	switch t.Kind {
	case KAnyItem:
		return true
	case KAtomic:
		a, ok := it.(xdm.Atomic)
		return ok && a.T.Derives(t.Type)
	}
	n, ok := it.(xdm.Node)
	if !ok {
		return false
	}
	switch t.Kind {
	case KAnyNode:
		return true
	case KDocument:
		return n.Kind() == xdm.DocumentNode
	case KElement:
		return n.Kind() == xdm.ElementNode && t.nameOK(n)
	case KAttribute:
		return n.Kind() == xdm.AttributeNode && t.nameOK(n)
	case KText:
		return n.Kind() == xdm.TextNode
	case KComment:
		return n.Kind() == xdm.CommentNode
	case KPI:
		return n.Kind() == xdm.PINode && t.nameOK(n)
	default:
		return false
	}
}

func (t ItemType) nameOK(n xdm.Node) bool {
	if t.AnyName || t.Name.IsZero() {
		return true
	}
	return t.Name.Equal(n.NodeName())
}

// Matches reports whether a materialized sequence matches the sequence type.
func (s SequenceType) Matches(seq xdm.Sequence) bool {
	switch s.Occ {
	case OccEmpty:
		return len(seq) == 0
	case OccOne:
		if len(seq) != 1 {
			return false
		}
	case OccOpt:
		if len(seq) > 1 {
			return false
		}
	case OccPlus:
		if len(seq) == 0 {
			return false
		}
	}
	for _, it := range seq {
		if !s.Item.MatchesItem(it) {
			return false
		}
	}
	return true
}

// NodeTest is the test part of a path step: by kind and/or name, with
// namespace or local-part wildcards ("*", "ns:*", "*:local").
type NodeTest struct {
	// Kind restricts the node kind; KindAny matches the axis's principal
	// node kind combined with the name test.
	Kind      TestKind
	Name      xdm.QName
	WildSpace bool // "*:local": any namespace
	WildLocal bool // "ns:*": any local name
	AnyName   bool // "*" or kind test without name
}

// TestKind discriminates node tests.
type TestKind uint8

const (
	TestName    TestKind = iota // name test against the principal node kind
	TestAnyKind                 // node()
	TestDoc
	TestElement
	TestAttribute
	TestText
	TestComment
	TestPI
)

// MatchesNode reports whether node n passes the test; principal is the
// principal node kind of the axis (element for most axes, attribute for the
// attribute axis).
func (t NodeTest) MatchesNode(n xdm.Node, principal xdm.NodeKind) bool {
	switch t.Kind {
	case TestAnyKind:
		return true
	case TestDoc:
		return n.Kind() == xdm.DocumentNode
	case TestText:
		return n.Kind() == xdm.TextNode
	case TestComment:
		return n.Kind() == xdm.CommentNode
	case TestPI:
		if n.Kind() != xdm.PINode {
			return false
		}
		return t.AnyName || t.Name.Local == "" || n.NodeName().Local == t.Name.Local
	case TestElement:
		if n.Kind() != xdm.ElementNode {
			return false
		}
		return t.matchName(n)
	case TestAttribute:
		if n.Kind() != xdm.AttributeNode {
			return false
		}
		return t.matchName(n)
	default: // TestName
		if n.Kind() != principal {
			return false
		}
		return t.matchName(n)
	}
}

func (t NodeTest) matchName(n xdm.Node) bool {
	if t.AnyName {
		return true
	}
	name := n.NodeName()
	if t.WildSpace {
		return name.Local == t.Name.Local
	}
	if t.WildLocal {
		return name.Space == t.Name.Space
	}
	return name.Equal(t.Name)
}

// String renders the node test in XQuery syntax.
func (t NodeTest) String() string {
	switch t.Kind {
	case TestAnyKind:
		return "node()"
	case TestDoc:
		return "document-node()"
	case TestText:
		return "text()"
	case TestComment:
		return "comment()"
	case TestPI:
		if t.Name.Local != "" {
			return "processing-instruction(" + t.Name.Local + ")"
		}
		return "processing-instruction()"
	case TestElement:
		return kindTestString("element", ItemType{Name: t.Name, AnyName: t.AnyName})
	case TestAttribute:
		return kindTestString("attribute", ItemType{Name: t.Name, AnyName: t.AnyName})
	}
	switch {
	case t.AnyName:
		return "*"
	case t.WildSpace:
		return "*:" + t.Name.Local
	case t.WildLocal:
		return t.Name.Prefix + ":*"
	default:
		return t.Name.String()
	}
}

// SubtypeOf reports a conservative subtype relation between sequence types:
// true only when every instance of s is an instance of o. Used by the
// optimizer; false negatives are safe.
func (s SequenceType) SubtypeOf(o SequenceType) bool {
	if !occSubtype(s.Occ, o.Occ) {
		return false
	}
	if s.Occ == OccEmpty {
		return o.Occ == OccEmpty || o.Occ == OccOpt || o.Occ == OccStar
	}
	return s.Item.subtypeOf(o.Item)
}

func occSubtype(a, b Occurrence) bool {
	// counts admitted: One {1}, Opt {0,1}, Star {0..}, Plus {1..}, Empty {0}
	admits := func(o Occurrence) (lo, hi int) {
		switch o {
		case OccOne:
			return 1, 1
		case OccOpt:
			return 0, 1
		case OccStar:
			return 0, 1 << 30
		case OccPlus:
			return 1, 1 << 30
		default:
			return 0, 0
		}
	}
	alo, ahi := admits(a)
	blo, bhi := admits(b)
	return alo >= blo && ahi <= bhi
}

func (t ItemType) subtypeOf(o ItemType) bool {
	if o.Kind == KAnyItem {
		return true
	}
	if t.Kind == KAtomic && o.Kind == KAtomic {
		return t.Type.Derives(o.Type)
	}
	if o.Kind == KAnyNode {
		switch t.Kind {
		case KAnyNode, KDocument, KElement, KAttribute, KText, KComment, KPI:
			return true
		}
		return false
	}
	if t.Kind != o.Kind {
		return false
	}
	// Same node-kind tests: name constraint must be no looser.
	if o.AnyName || o.Name.IsZero() {
		return true
	}
	return !t.AnyName && t.Name.Equal(o.Name)
}
