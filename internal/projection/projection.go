// Package projection implements static XML projection (Marian & Siméon's
// "Projecting XML documents", and the buffer-minimization line of Koch et
// al.): a query's statically-derived path set is compiled into a small
// automaton the parser consults while ingesting a document, so subtrees no
// path can touch are tokenized but never materialized. The package is
// deliberately self-contained (no store/expr imports): the optimizer
// produces a Paths value, the parser runs a Runner over it.
package projection

import "strings"

// Step is one step of a projection path, matched against element names.
type Step struct {
	// AnyDepth marks a descendant step (//): the step matches at any depth
	// below the previous match instead of only at the next level.
	AnyDepth bool
	// Name-test fields, mirroring the path-step tests the optimizer sees:
	// exact (Space, Local), namespace wildcard (*:local), local wildcard
	// (ns:*) or any name (*).
	Space, Local         string
	WildSpace, WildLocal bool
	Any                  bool
}

// match reports whether the step's name test accepts an element name.
func (s Step) match(space, local string) bool {
	switch {
	case s.Any:
		return true
	case s.WildSpace:
		return local == s.Local
	case s.WildLocal:
		return space == s.Space
	default:
		return space == s.Space && local == s.Local
	}
}

// Match is the exported form of the name test, used by the streamexec spine
// automaton (which matches the same step vocabulary against a live element
// stream).
func (s Step) Match(space, local string) bool { return s.match(space, local) }

func (s Step) String() string {
	var b strings.Builder
	if s.AnyDepth {
		b.WriteString("//")
	} else {
		b.WriteString("/")
	}
	switch {
	case s.Any:
		b.WriteString("*")
	case s.WildSpace:
		b.WriteString("*:" + s.Local)
	case s.WildLocal:
		b.WriteString("{" + s.Space + "}*")
	default:
		if s.Space != "" {
			b.WriteString("{" + s.Space + "}")
		}
		b.WriteString(s.Local)
	}
	return b.String()
}

// Path is one root path of the projection: a step sequence anchored at the
// document root. Elements along the way are materialized as traversal
// nodes; elements matching the full path are targets. With KeepSubtree set
// the entire subtree below each target is retained (the query uses the
// target's content — string value, serialization, copy); without it only
// the target node itself (plus its attributes) is needed.
type Path struct {
	Steps       []Step
	KeepSubtree bool
}

func (p Path) String() string {
	var b strings.Builder
	if len(p.Steps) == 0 {
		b.WriteString("/")
	}
	for _, s := range p.Steps {
		b.WriteString(s.String())
	}
	if p.KeepSubtree {
		b.WriteString("#")
	}
	return b.String()
}

// Paths is the static projection of a query. The zero value keeps
// everything; use New to start an empty projectable set.
type Paths struct {
	// KeepAll disables projection: the analysis found a construct whose
	// node needs cannot be bounded statically (reverse axes at the root,
	// fn:id, recursive user functions, unknown expressions).
	KeepAll bool
	List    []Path
}

// New returns an empty, projectable path set.
func New() *Paths { return &Paths{} }

// KeepEverything returns the "no projection" sentinel.
func KeepEverything() *Paths { return &Paths{KeepAll: true} }

// Add appends a path, deduplicating exact step matches (keep flags are
// OR-ed).
func (p *Paths) Add(path Path) {
	for i := range p.List {
		if samePathSteps(p.List[i].Steps, path.Steps) {
			p.List[i].KeepSubtree = p.List[i].KeepSubtree || path.KeepSubtree
			return
		}
	}
	p.List = append(p.List, path)
}

func samePathSteps(a, b []Step) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Projectable reports whether this path set can actually prune anything:
// a nil set, a KeepAll set, and a set whose root path keeps the whole
// subtree all mean "parse everything".
func (p *Paths) Projectable() bool {
	if p == nil || p.KeepAll {
		return false
	}
	for _, path := range p.List {
		if len(path.Steps) == 0 && path.KeepSubtree {
			return false
		}
	}
	return true
}

// String renders the set for diagnostics/tests: sorted-insertion order,
// space-separated, "#" marking keep-subtree targets.
func (p *Paths) String() string {
	if p == nil || p.KeepAll {
		return "*keep-all*"
	}
	parts := make([]string, len(p.List))
	for i, path := range p.List {
		parts[i] = path.String()
	}
	return strings.Join(parts, " ")
}

// Action is the Runner's verdict for one StartElement event.
type Action uint8

const (
	// Keep materializes the element (and its attributes); children are
	// decided individually.
	Keep Action = iota
	// KeepSubtree materializes the element and everything below it with no
	// further state computation.
	KeepSubtree
	// Skip drops the whole subtree: the caller must consume tokens up to
	// the matching end tag without materializing anything, and must NOT
	// call EndElement on the runner for this element.
	Skip
)

// state is one NFA state: step s of path p is the next step to match.
type state struct{ p, s int32 }

// Runner evaluates the projection automaton against a depth-first element
// stream. It is not safe for concurrent use; the parser owns it.
type Runner struct {
	paths []Path
	// Flat state-set stack: states holds the concatenated sets, marks the
	// start offset of the set for each open (materialized) element. The
	// set on top applies to children of the current element.
	states []state
	marks  []int32
	// keepDepth > 0: inside a keep-subtree region, counted by nesting.
	keepDepth int
}

// NewRunner compiles a path set into a runner. Returns nil when the set is
// not projectable (callers treat a nil runner as "keep everything").
func NewRunner(p *Paths) *Runner {
	if !p.Projectable() {
		return nil
	}
	r := &Runner{paths: p.List}
	// Initial state set: the document root's children are matched against
	// the first step of every non-empty path.
	r.marks = append(r.marks, 0)
	for i := range r.paths {
		if len(r.paths[i].Steps) > 0 {
			r.states = append(r.states, state{p: int32(i), s: 0})
		}
	}
	return r
}

// StartElement decides the fate of an element: the element stream must be
// the document's elements in document order, with EndElement called for
// every element that was NOT skipped.
func (r *Runner) StartElement(space, local string) Action {
	if r.keepDepth > 0 {
		r.keepDepth++
		return KeepSubtree
	}
	top := r.marks[len(r.marks)-1]
	cur := r.states[top:]
	next := len(r.states) // build the child set in place at the top
	matched := false
	for _, st := range cur {
		steps := r.paths[st.p].Steps
		step := steps[st.s]
		if step.AnyDepth {
			// A descendant step survives into the child context: it may
			// still match deeper.
			r.states = append(r.states, st)
		}
		if step.match(space, local) {
			if int(st.s)+1 == len(steps) {
				matched = true
				if r.paths[st.p].KeepSubtree {
					// Target with content: whole subtree retained. Unwind
					// the speculative child set and switch to depth
					// counting.
					r.states = r.states[:next]
					r.keepDepth = 1
					return KeepSubtree
				}
				// Target without content: the node itself is enough.
				continue
			}
			r.states = append(r.states, state{p: st.p, s: st.s + 1})
		}
	}
	if !matched && len(r.states) == next {
		// No path reaches this element or anything below it.
		return Skip
	}
	r.marks = append(r.marks, int32(next))
	return Keep
}

// EndElement closes the innermost kept element.
func (r *Runner) EndElement() {
	if r.keepDepth > 0 {
		r.keepDepth--
		return
	}
	top := r.marks[len(r.marks)-1]
	r.marks = r.marks[:len(r.marks)-1]
	r.states = r.states[:top]
}

// KeepingContent reports whether character data, comments and processing
// instructions at the current position must be materialized. Outside
// keep-subtree regions only element structure (and attributes) is needed:
// traversal and empty-target elements never contribute text to the result.
func (r *Runner) KeepingContent() bool { return r.keepDepth > 0 }
