package functions

import (
	"math"
	"sort"

	"xqgo/internal/xdm"
)

// Sequence functions: fn:count, empty, exists, distinct-values, index-of,
// insert-before, remove, reverse, subsequence, unordered, zero-or-one,
// one-or-more, exactly-one, deep-equal, plus the aggregates.

func init() {
	det := Properties{Deterministic: true}

	register(&Func{Name: "count", MinArgs: 1, MaxArgs: 1, Props: det,
		Call: func(_ Context, args []xdm.Sequence) (xdm.Sequence, error) {
			return singleton(xdm.NewInteger(int64(len(args[0])))), nil
		}})

	register(&Func{Name: "empty", MinArgs: 1, MaxArgs: 1, Props: det,
		Call: func(_ Context, args []xdm.Sequence) (xdm.Sequence, error) {
			return singleton(xdm.NewBoolean(len(args[0]) == 0)), nil
		}})

	register(&Func{Name: "exists", MinArgs: 1, MaxArgs: 1, Props: det,
		Call: func(_ Context, args []xdm.Sequence) (xdm.Sequence, error) {
			return singleton(xdm.NewBoolean(len(args[0]) != 0)), nil
		}})

	register(&Func{Name: "distinct-values", MinArgs: 1, MaxArgs: 1,
		Props: Properties{Deterministic: true, CanRaiseError: true},
		Call: func(_ Context, args []xdm.Sequence) (xdm.Sequence, error) {
			return distinctValues(args[0])
		}})

	// fn:distinct-nodes from the paper's F&O draft: dedup by node identity,
	// document order.
	register(&Func{Name: "distinct-nodes", MinArgs: 1, MaxArgs: 1,
		Props: Properties{Deterministic: true, DocOrder: true, CanRaiseError: true},
		Call: func(_ Context, args []xdm.Sequence) (xdm.Sequence, error) {
			return xdm.SortDocOrderDedup(append(xdm.Sequence(nil), args[0]...))
		}})

	register(&Func{Name: "index-of", MinArgs: 2, MaxArgs: 2,
		Props: Properties{Deterministic: true, CanRaiseError: true},
		Call: func(_ Context, args []xdm.Sequence) (xdm.Sequence, error) {
			target, ok, err := oneAtomic(args[1])
			if err != nil {
				return nil, err
			}
			if !ok {
				return nil, typeErr("fn:index-of: search value is the empty sequence")
			}
			var out xdm.Sequence
			for i, it := range args[0] {
				eq, err := xdm.GeneralCompareItems(xdm.OpEq, xdm.Atomize(it), target)
				if err == nil && eq {
					out = append(out, xdm.NewInteger(int64(i+1)))
				}
			}
			return out, nil
		}})

	register(&Func{Name: "insert-before", MinArgs: 3, MaxArgs: 3, Props: det,
		Call: func(_ Context, args []xdm.Sequence) (xdm.Sequence, error) {
			posA, ok, err := oneAtomic(args[1])
			if err != nil || !ok {
				return nil, typeErr("fn:insert-before: position required")
			}
			pos := int(posA.AsInt())
			if pos < 1 {
				pos = 1
			}
			if pos > len(args[0])+1 {
				pos = len(args[0]) + 1
			}
			out := make(xdm.Sequence, 0, len(args[0])+len(args[2]))
			out = append(out, args[0][:pos-1]...)
			out = append(out, args[2]...)
			out = append(out, args[0][pos-1:]...)
			return out, nil
		}})

	register(&Func{Name: "remove", MinArgs: 2, MaxArgs: 2, Props: det,
		Call: func(_ Context, args []xdm.Sequence) (xdm.Sequence, error) {
			posA, ok, err := oneAtomic(args[1])
			if err != nil || !ok {
				return nil, typeErr("fn:remove: position required")
			}
			pos := int(posA.AsInt())
			if pos < 1 || pos > len(args[0]) {
				return args[0], nil
			}
			out := make(xdm.Sequence, 0, len(args[0])-1)
			out = append(out, args[0][:pos-1]...)
			return append(out, args[0][pos:]...), nil
		}})

	register(&Func{Name: "reverse", MinArgs: 1, MaxArgs: 1, Props: det,
		Call: func(_ Context, args []xdm.Sequence) (xdm.Sequence, error) {
			in := args[0]
			out := make(xdm.Sequence, len(in))
			for i, it := range in {
				out[len(in)-1-i] = it
			}
			return out, nil
		}})

	register(&Func{Name: "subsequence", MinArgs: 2, MaxArgs: 3, Props: det,
		Call: func(_ Context, args []xdm.Sequence) (xdm.Sequence, error) {
			startA, ok, err := numericArg(args[1])
			if err != nil || !ok {
				return nil, typeErr("fn:subsequence: start required")
			}
			start := math.Round(startA.AsFloat())
			length := math.Inf(1)
			if len(args) == 3 {
				lenA, ok, err := numericArg(args[2])
				if err != nil || !ok {
					return nil, typeErr("fn:subsequence: bad length")
				}
				length = math.Round(lenA.AsFloat())
			}
			var out xdm.Sequence
			for i, it := range args[0] {
				p := float64(i + 1)
				if p >= start && p < start+length {
					out = append(out, it)
				}
			}
			return out, nil
		}})

	register(&Func{Name: "unordered", MinArgs: 1, MaxArgs: 1, Props: det,
		Call: func(_ Context, args []xdm.Sequence) (xdm.Sequence, error) {
			return args[0], nil
		}})

	register(&Func{Name: "zero-or-one", MinArgs: 1, MaxArgs: 1,
		Props: Properties{Deterministic: true, CanRaiseError: true},
		Call: func(_ Context, args []xdm.Sequence) (xdm.Sequence, error) {
			if len(args[0]) > 1 {
				return nil, xdm.Errf("FORG0003", "fn:zero-or-one: %d items", len(args[0]))
			}
			return args[0], nil
		}})

	register(&Func{Name: "one-or-more", MinArgs: 1, MaxArgs: 1,
		Props: Properties{Deterministic: true, CanRaiseError: true},
		Call: func(_ Context, args []xdm.Sequence) (xdm.Sequence, error) {
			if len(args[0]) == 0 {
				return nil, xdm.Errf("FORG0004", "fn:one-or-more: empty sequence")
			}
			return args[0], nil
		}})

	register(&Func{Name: "exactly-one", MinArgs: 1, MaxArgs: 1,
		Props: Properties{Deterministic: true, CanRaiseError: true},
		Call: func(_ Context, args []xdm.Sequence) (xdm.Sequence, error) {
			if len(args[0]) != 1 {
				return nil, xdm.Errf("FORG0005", "fn:exactly-one: %d items", len(args[0]))
			}
			return args[0], nil
		}})

	register(&Func{Name: "deep-equal", MinArgs: 2, MaxArgs: 2, Props: det,
		Call: func(_ Context, args []xdm.Sequence) (xdm.Sequence, error) {
			return singleton(xdm.NewBoolean(deepEqualSeq(args[0], args[1]))), nil
		}})

	// aggregates
	register(&Func{Name: "sum", MinArgs: 1, MaxArgs: 2,
		Props: Properties{Deterministic: true, CanRaiseError: true},
		Call: func(_ Context, args []xdm.Sequence) (xdm.Sequence, error) {
			if len(args[0]) == 0 {
				if len(args) == 2 {
					return args[1], nil
				}
				return singleton(xdm.NewInteger(0)), nil
			}
			return aggregate(args[0], false)
		}})

	register(&Func{Name: "avg", MinArgs: 1, MaxArgs: 1,
		Props: Properties{Deterministic: true, CanRaiseError: true},
		Call: func(_ Context, args []xdm.Sequence) (xdm.Sequence, error) {
			if len(args[0]) == 0 {
				return emptySeq, nil
			}
			sum, err := aggregate(args[0], false)
			if err != nil {
				return nil, err
			}
			a := sum[0].(xdm.Atomic)
			r, err := xdm.Arith(xdm.OpDiv, a, xdm.NewInteger(int64(len(args[0]))))
			if err != nil {
				return nil, err
			}
			return singleton(r), nil
		}})

	register(&Func{Name: "max", MinArgs: 1, MaxArgs: 1,
		Props: Properties{Deterministic: true, CanRaiseError: true},
		Call: func(_ Context, args []xdm.Sequence) (xdm.Sequence, error) {
			return extremum(args[0], true)
		}})

	register(&Func{Name: "min", MinArgs: 1, MaxArgs: 1,
		Props: Properties{Deterministic: true, CanRaiseError: true},
		Call: func(_ Context, args []xdm.Sequence) (xdm.Sequence, error) {
			return extremum(args[0], false)
		}})
}

// distinctValues deduplicates atomized values by the eq relation (with type
// promotion); NaN equals NaN for this purpose.
func distinctValues(in xdm.Sequence) (xdm.Sequence, error) {
	var out xdm.Sequence
	seenStrings := map[string]bool{}
	var seenNums []float64
	var seenOther []xdm.Atomic
	sawNaN := false
	for _, it := range in {
		a := xdm.Atomize(it)
		switch {
		case a.T.IsNumeric():
			f := a.AsFloat()
			if math.IsNaN(f) {
				if !sawNaN {
					sawNaN = true
					out = append(out, a)
				}
				continue
			}
			idx := sort.SearchFloat64s(seenNums, f)
			if idx < len(seenNums) && seenNums[idx] == f {
				continue
			}
			seenNums = append(seenNums, 0)
			copy(seenNums[idx+1:], seenNums[idx:])
			seenNums[idx] = f
			out = append(out, a)
		case a.T == xdm.TString || a.T == xdm.TUntyped || a.T == xdm.TAnyURI:
			if seenStrings[a.S] {
				continue
			}
			seenStrings[a.S] = true
			out = append(out, a)
		default:
			dup := false
			for _, s := range seenOther {
				if eq, err := xdm.ValueCompare(xdm.OpEq, s, a); err == nil && eq {
					dup = true
					break
				}
			}
			if !dup {
				seenOther = append(seenOther, a)
				out = append(out, a)
			}
		}
	}
	return out, nil
}

// aggregate sums a sequence with promotion; untyped values cast to double.
func aggregate(in xdm.Sequence, _ bool) (xdm.Sequence, error) {
	acc := xdm.Atomize(in[0])
	var err error
	if acc.T == xdm.TUntyped {
		if acc, err = xdm.Cast(acc, xdm.TDouble); err != nil {
			return nil, err
		}
	}
	for _, it := range in[1:] {
		a := xdm.Atomize(it)
		if acc, err = xdm.Arith(xdm.OpAdd, acc, a); err != nil {
			return nil, err
		}
	}
	return singleton(acc), nil
}

func extremum(in xdm.Sequence, wantMax bool) (xdm.Sequence, error) {
	if len(in) == 0 {
		return emptySeq, nil
	}
	best := xdm.Atomize(in[0])
	var err error
	if best.T == xdm.TUntyped {
		if best, err = xdm.Cast(best, xdm.TDouble); err != nil {
			return nil, err
		}
	}
	for _, it := range in[1:] {
		a := xdm.Atomize(it)
		if a.T == xdm.TUntyped {
			if a, err = xdm.Cast(a, xdm.TDouble); err != nil {
				return nil, err
			}
		}
		// NaN contaminates.
		if a.T.IsNumeric() && math.IsNaN(a.AsFloat()) {
			return singleton(a), nil
		}
		c, nan, err := xdm.OrderCompare(a, best)
		if err != nil {
			return nil, err
		}
		if nan {
			return singleton(a), nil
		}
		if (wantMax && c > 0) || (!wantMax && c < 0) {
			best = a
		}
	}
	return singleton(best), nil
}

// deepEqualSeq implements fn:deep-equal over materialized sequences.
func deepEqualSeq(a, b xdm.Sequence) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !deepEqualItem(a[i], b[i]) {
			return false
		}
	}
	return true
}

func deepEqualItem(x, y xdm.Item) bool {
	nx, okx := x.(xdm.Node)
	ny, oky := y.(xdm.Node)
	if okx != oky {
		return false
	}
	if !okx {
		return xdm.DeepEqualAtomic(x.(xdm.Atomic), y.(xdm.Atomic))
	}
	return deepEqualNode(nx, ny)
}

func deepEqualNode(a, b xdm.Node) bool {
	if a.Kind() != b.Kind() {
		return false
	}
	switch a.Kind() {
	case xdm.TextNode, xdm.CommentNode:
		return a.StringValue() == b.StringValue()
	case xdm.PINode:
		return a.NodeName().Equal(b.NodeName()) && a.StringValue() == b.StringValue()
	case xdm.AttributeNode:
		return a.NodeName().Equal(b.NodeName()) && a.StringValue() == b.StringValue()
	case xdm.DocumentNode, xdm.ElementNode:
		if a.Kind() == xdm.ElementNode {
			if !a.NodeName().Equal(b.NodeName()) {
				return false
			}
			aa, ba := a.AttributesOf(), b.AttributesOf()
			if len(aa) != len(ba) {
				return false
			}
			for _, x := range aa {
				found := false
				for _, y := range ba {
					if x.NodeName().Equal(y.NodeName()) && x.StringValue() == y.StringValue() {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		ac := significantChildren(a)
		bc := significantChildren(b)
		if len(ac) != len(bc) {
			return false
		}
		for i := range ac {
			if !deepEqualNode(ac[i], bc[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// significantChildren drops comments and PIs, per fn:deep-equal.
func significantChildren(n xdm.Node) []xdm.Node {
	var out []xdm.Node
	for _, c := range n.ChildrenOf() {
		switch c.Kind() {
		case xdm.CommentNode, xdm.PINode:
		default:
			out = append(out, c)
		}
	}
	return out
}
