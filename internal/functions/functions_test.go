package functions

import (
	"math"
	"strings"
	"testing"
	"time"

	"xqgo/internal/xdm"
)

// stubCtx implements Context for direct function tests.
type stubCtx struct {
	item xdm.Item
	pos  int64
	size int64
}

func (s *stubCtx) ContextItem() (xdm.Item, bool) { return s.item, s.item != nil }
func (s *stubCtx) Position() int64               { return s.pos }
func (s *stubCtx) Size() (int64, error)          { return s.size, nil }
func (s *stubCtx) Doc(uri string) (xdm.Node, error) {
	return nil, xdm.Errf("FODC0002", "no doc %q", uri)
}
func (s *stubCtx) Collection(string) (xdm.Sequence, error) {
	return nil, xdm.Errf("FODC0004", "no collections")
}
func (s *stubCtx) CurrentDateTime() xdm.Atomic {
	return xdm.NewDateTime(time.Date(2004, 9, 14, 12, 0, 0, 0, time.UTC), "")
}

func call(t *testing.T, name string, args ...xdm.Sequence) (xdm.Sequence, error) {
	t.Helper()
	f, err := Lookup(name, len(args))
	if err != nil {
		t.Fatalf("lookup %s: %v", name, err)
	}
	if f == nil {
		t.Fatalf("unknown function %s", name)
	}
	return f.Call(&stubCtx{}, args)
}

func one(items ...xdm.Item) xdm.Sequence { return items }

func str(s string) xdm.Sequence  { return one(xdm.NewString(s)) }
func num(i int64) xdm.Sequence   { return one(xdm.NewInteger(i)) }
func dbl(f float64) xdm.Sequence { return one(xdm.NewDouble(f)) }

// expectStr calls a function and compares the single string/lexical result.
func expectStr(t *testing.T, want, name string, args ...xdm.Sequence) {
	t.Helper()
	out, err := call(t, name, args...)
	if err != nil {
		t.Errorf("%s: %v", name, err)
		return
	}
	var parts []string
	for _, it := range out {
		parts = append(parts, xdm.StringValue(it))
	}
	if got := strings.Join(parts, "|"); got != want {
		t.Errorf("%s(...) = %q, want %q", name, got, want)
	}
}

func TestStringFunctions(t *testing.T) {
	expectStr(t, "ab", "concat", str("a"), str("b"))
	expectStr(t, "a-b-c", "string-join", one(xdm.NewString("a"), xdm.NewString("b"), xdm.NewString("c")), str("-"))
	expectStr(t, "5", "string-length", str("héllo"))
	expectStr(t, "a b c", "normalize-space", str("  a \t b\n c "))
	expectStr(t, "ABC", "upper-case", str("abc"))
	expectStr(t, "abc", "lower-case", str("ABC"))
	expectStr(t, "true", "contains", str("banana"), str("nan"))
	expectStr(t, "false", "contains", str("banana"), str("xyz"))
	expectStr(t, "true", "starts-with", str("banana"), str("ba"))
	expectStr(t, "true", "ends-with", str("banana"), str("na"))
	expectStr(t, "ban", "substring", str("banana"), num(1), num(3))
	expectStr(t, "nana", "substring", str("banana"), num(3))
	expectStr(t, "ba", "substring-before", str("banana"), str("na"))
	expectStr(t, "ana", "substring-after", str("banana"), str("ban"))
	expectStr(t, "", "substring-before", str("banana"), str("zz"))
	expectStr(t, "BAnAnA", "translate", str("banana"), str("ban"), str("BAn"))
	expectStr(t, "bnn", "translate", str("banana"), str("a"), str(""))
	expectStr(t, "-1", "compare", str("a"), str("b"))
	expectStr(t, "0", "compare", str("a"), str("a"))
	expectStr(t, "true", "matches", str("banana"), str("^b.*a$"))
	expectStr(t, "bXnXnX", "replace", str("banana"), str("a"), str("X"))
	expectStr(t, "a|b|c", "tokenize", str("a,b,c"), str(","))
	expectStr(t, "65|66", "string-to-codepoints", str("AB"))
	expectStr(t, "AB", "codepoints-to-string", one(xdm.NewInteger(65), xdm.NewInteger(66)))
}

func TestSequenceFunctions(t *testing.T) {
	expectStr(t, "3", "count", one(xdm.NewInteger(1), xdm.NewInteger(2), xdm.NewInteger(3)))
	expectStr(t, "0", "count", one())
	expectStr(t, "true", "empty", one())
	expectStr(t, "false", "empty", num(1))
	expectStr(t, "true", "exists", num(1))
	expectStr(t, "1|2", "distinct-values", one(xdm.NewInteger(1), xdm.NewInteger(2), xdm.NewInteger(1), xdm.NewDouble(2)))
	expectStr(t, "a", "distinct-values", one(xdm.NewString("a"), xdm.NewUntyped("a")))
	expectStr(t, "2|4", "index-of", one(xdm.NewInteger(5), xdm.NewInteger(7), xdm.NewInteger(6), xdm.NewInteger(7)), num(7))
	expectStr(t, "1|9|2", "insert-before", one(xdm.NewInteger(1), xdm.NewInteger(2)), num(2), num(9))
	expectStr(t, "1|3", "remove", one(xdm.NewInteger(1), xdm.NewInteger(2), xdm.NewInteger(3)), num(2))
	expectStr(t, "3|2|1", "reverse", one(xdm.NewInteger(1), xdm.NewInteger(2), xdm.NewInteger(3)))
	expectStr(t, "2|3", "subsequence", one(xdm.NewInteger(1), xdm.NewInteger(2), xdm.NewInteger(3)), num(2))
	expectStr(t, "2", "subsequence", one(xdm.NewInteger(1), xdm.NewInteger(2), xdm.NewInteger(3)), num(2), num(1))
	expectStr(t, "6", "sum", one(xdm.NewInteger(1), xdm.NewInteger(2), xdm.NewInteger(3)))
	expectStr(t, "0", "sum", one())
	expectStr(t, "2", "avg", one(xdm.NewInteger(1), xdm.NewInteger(3)))
	expectStr(t, "", "avg", one())
	expectStr(t, "3", "max", one(xdm.NewInteger(1), xdm.NewInteger(3), xdm.NewInteger(2)))
	expectStr(t, "1", "min", one(xdm.NewInteger(1), xdm.NewInteger(3), xdm.NewInteger(2)))
	expectStr(t, "c", "max", one(xdm.NewString("a"), xdm.NewString("c")))
	expectStr(t, "true", "deep-equal", num(1), dbl(1))
	expectStr(t, "false", "deep-equal", num(1), num(2))

	if _, err := call(t, "zero-or-one", one(xdm.NewInteger(1), xdm.NewInteger(2))); err == nil {
		t.Error("zero-or-one of 2 items must fail")
	}
	if _, err := call(t, "one-or-more", one()); err == nil {
		t.Error("one-or-more of () must fail")
	}
	if _, err := call(t, "exactly-one", one()); err == nil {
		t.Error("exactly-one of () must fail")
	}
}

func TestNumericFunctions(t *testing.T) {
	expectStr(t, "3", "abs", num(-3))
	expectStr(t, "2", "floor", dbl(2.7))
	expectStr(t, "-3", "floor", dbl(-2.3))
	expectStr(t, "3", "ceiling", dbl(2.3))
	expectStr(t, "-2", "ceiling", dbl(-2.7))
	expectStr(t, "3", "round", dbl(2.5))
	expectStr(t, "2", "round", dbl(2.4))
	expectStr(t, "2", "round-half-to-even", dbl(2.5))
	expectStr(t, "4", "round-half-to-even", dbl(3.5))
	expectStr(t, "42", "number", str("42"))
	out, err := call(t, "number", str("not-a-number"))
	if err != nil || len(out) != 1 || !math.IsNaN(out[0].(xdm.Atomic).F) {
		t.Errorf("number of garbage should be NaN: %v %v", out, err)
	}
	// Numeric functions preserve the input type family.
	out, _ = call(t, "abs", num(-3))
	if out[0].(xdm.Atomic).T != xdm.TInteger {
		t.Error("abs of integer is an integer")
	}
}

func TestBooleanFunctions(t *testing.T) {
	expectStr(t, "true", "true")
	expectStr(t, "false", "false")
	expectStr(t, "false", "not", one(xdm.True))
	expectStr(t, "true", "not", one())
	expectStr(t, "true", "boolean", str("x"))
	expectStr(t, "false", "boolean", str(""))
}

func TestDateFunctions(t *testing.T) {
	expectStr(t, "2002-05-20", "date", str("2002-05-20"))
	d, _ := xdm.Cast(xdm.NewString("2002-05-20"), xdm.TDate)
	dur, _ := xdm.Cast(xdm.NewString("P10D"), xdm.TDayTimeDuration)
	out, err := call(t, "add-date", one(d), one(dur))
	if err != nil {
		t.Fatal(err)
	}
	if got := time.Unix(0, out[0].(xdm.Atomic).I).UTC().Day(); got != 30 {
		t.Errorf("add-date day = %d", got)
	}
	expectStr(t, "2002", "year-from-date", one(d))
	expectStr(t, "5", "month-from-date", one(d))
	expectStr(t, "20", "day-from-date", one(d))
	dt, _ := xdm.Cast(xdm.NewString("2004-09-14T10:30:00"), xdm.TDateTime)
	expectStr(t, "10", "hours-from-dateTime", one(dt))
	expectStr(t, "30", "minutes-from-dateTime", one(dt))
	// current-* use the stable context clock.
	expectStr(t, "2004-09-14", "current-date")
}

func TestNodeAndQNameFunctions(t *testing.T) {
	expectStr(t, "n", "local-name-from-QName", one(xdm.NewQName(xdm.Name("u", "n"))))
	expectStr(t, "u", "namespace-uri-from-QName", one(xdm.NewQName(xdm.Name("u", "n"))))
	out, err := call(t, "QName", str("urn:x"), str("p:loc"))
	if err != nil {
		t.Fatal(err)
	}
	q := out[0].(xdm.Atomic).Q
	if q.Space != "urn:x" || q.Local != "loc" || q.Prefix != "p" {
		t.Errorf("QName = %+v", q)
	}
}

func TestErrorAndTrace(t *testing.T) {
	_, err := call(t, "error")
	if err == nil || !xdm.IsCode(err, "FOER0000") {
		t.Errorf("fn:error() = %v", err)
	}
	_, err = call(t, "error", str("MYERR"), str("custom"))
	if err == nil || !xdm.IsCode(err, "MYERR") {
		t.Errorf("fn:error with code = %v", err)
	}
}

func TestLookupArity(t *testing.T) {
	if _, err := Lookup("concat", 1); err == nil {
		t.Error("concat/1 must be an arity error")
	}
	if f, err := Lookup("concat", 7); err != nil || f == nil {
		t.Error("concat is variadic")
	}
	if f, _ := Lookup("nosuch", 0); f != nil {
		t.Error("unknown function")
	}
	if !Known("count") || Known("nosuch") {
		t.Error("Known")
	}
}

func TestPropertyTable(t *testing.T) {
	// The declarative property table drives the optimizer: spot-check it.
	doc, _ := Lookup("doc", 1)
	if !doc.Props.DocOrder {
		t.Error("fn:doc returns nodes in document order")
	}
	cur, _ := Lookup("current-dateTime", 0)
	if cur.Props.Deterministic {
		t.Error("current-dateTime is not deterministic")
	}
	cnt, _ := Lookup("count", 1)
	if !cnt.Props.Deterministic || cnt.Props.CreatesNodes {
		t.Error("count is a pure function")
	}
	pos, _ := Lookup("string", 0)
	if !pos.Props.UsesContext {
		t.Error("fn:string() without arguments uses the context")
	}
}

func TestContextUsingFunctions(t *testing.T) {
	ctx := &stubCtx{item: xdm.NewString("ctx-value"), pos: 2, size: 5}
	f, _ := Lookup("string", 0)
	out, err := f.Call(ctx, nil)
	if err != nil || xdm.StringValue(out[0]) != "ctx-value" {
		t.Errorf("fn:string() = %v, %v", out, err)
	}
	f, _ = Lookup("string-length", 0)
	out, err = f.Call(ctx, nil)
	if err != nil || out[0].(xdm.Atomic).I != 9 {
		t.Errorf("fn:string-length() = %v, %v", out, err)
	}
	// Without a context item: XPDY0002.
	f, _ = Lookup("string", 0)
	if _, err := f.Call(&stubCtx{}, nil); !xdm.IsCode(err, "XPDY0002") {
		t.Errorf("fn:string() without context = %v", err)
	}
}
