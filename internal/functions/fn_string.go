package functions

import (
	"math"
	"regexp"
	"strings"

	"xqgo/internal/xdm"
)

// String functions.

func init() {
	det := Properties{Deterministic: true}
	detErr := Properties{Deterministic: true, CanRaiseError: true}

	register(&Func{Name: "string", MinArgs: 0, MaxArgs: 1,
		Props: Properties{Deterministic: true, UsesContext: true},
		Call: func(ctx Context, args []xdm.Sequence) (xdm.Sequence, error) {
			if len(args) == 0 {
				it, ok := ctx.ContextItem()
				if !ok {
					return nil, xdm.Errf("XPDY0002", "fn:string(): no context item")
				}
				return singleton(xdm.NewString(xdm.StringValue(it))), nil
			}
			if len(args[0]) == 0 {
				return singleton(xdm.NewString("")), nil
			}
			it, err := xdm.Single(args[0])
			if err != nil {
				return nil, err
			}
			return singleton(xdm.NewString(xdm.StringValue(it))), nil
		}})

	register(&Func{Name: "concat", MinArgs: 2, MaxArgs: -1, Props: det,
		Call: func(_ Context, args []xdm.Sequence) (xdm.Sequence, error) {
			var b strings.Builder
			for _, arg := range args {
				s, err := oneString(arg)
				if err != nil {
					return nil, err
				}
				b.WriteString(s)
			}
			return singleton(xdm.NewString(b.String())), nil
		}})

	register(&Func{Name: "string-join", MinArgs: 2, MaxArgs: 2, Props: det,
		Call: func(_ Context, args []xdm.Sequence) (xdm.Sequence, error) {
			sep, err := oneString(args[1])
			if err != nil {
				return nil, err
			}
			parts := make([]string, len(args[0]))
			for i, it := range args[0] {
				parts[i] = xdm.StringValue(it)
			}
			return singleton(xdm.NewString(strings.Join(parts, sep))), nil
		}})

	register(&Func{Name: "string-length", MinArgs: 0, MaxArgs: 1,
		Props: Properties{Deterministic: true, UsesContext: true},
		Call: func(ctx Context, args []xdm.Sequence) (xdm.Sequence, error) {
			s, err := stringArgOrContext(ctx, args)
			if err != nil {
				return nil, err
			}
			return singleton(xdm.NewInteger(int64(len([]rune(s))))), nil
		}})

	register(&Func{Name: "normalize-space", MinArgs: 0, MaxArgs: 1,
		Props: Properties{Deterministic: true, UsesContext: true},
		Call: func(ctx Context, args []xdm.Sequence) (xdm.Sequence, error) {
			s, err := stringArgOrContext(ctx, args)
			if err != nil {
				return nil, err
			}
			return singleton(xdm.NewString(strings.Join(strings.Fields(s), " "))), nil
		}})

	register(&Func{Name: "upper-case", MinArgs: 1, MaxArgs: 1, Props: det,
		Call: func(_ Context, args []xdm.Sequence) (xdm.Sequence, error) {
			s, err := oneString(args[0])
			if err != nil {
				return nil, err
			}
			return singleton(xdm.NewString(strings.ToUpper(s))), nil
		}})

	register(&Func{Name: "lower-case", MinArgs: 1, MaxArgs: 1, Props: det,
		Call: func(_ Context, args []xdm.Sequence) (xdm.Sequence, error) {
			s, err := oneString(args[0])
			if err != nil {
				return nil, err
			}
			return singleton(xdm.NewString(strings.ToLower(s))), nil
		}})

	register(&Func{Name: "contains", MinArgs: 2, MaxArgs: 2, Props: det,
		Call: stringPredicate(strings.Contains)})

	register(&Func{Name: "starts-with", MinArgs: 2, MaxArgs: 2, Props: det,
		Call: stringPredicate(strings.HasPrefix)})

	register(&Func{Name: "ends-with", MinArgs: 2, MaxArgs: 2, Props: det,
		Call: stringPredicate(strings.HasSuffix)})

	register(&Func{Name: "substring", MinArgs: 2, MaxArgs: 3, Props: detErr,
		Call: func(_ Context, args []xdm.Sequence) (xdm.Sequence, error) {
			s, err := oneString(args[0])
			if err != nil {
				return nil, err
			}
			startA, ok, err := numericArg(args[1])
			if err != nil || !ok {
				return nil, typeErr("fn:substring: start required")
			}
			// F&O: characters at positions p with round(start) <= p <
			// round(start) + round(length), computed in doubles so that NaN
			// arguments select nothing and infinities behave per IEEE.
			startF := math.Floor(startA.AsFloat() + 0.5)
			endF := math.Inf(1)
			if len(args) == 3 {
				lenA, ok, err := numericArg(args[2])
				if err != nil || !ok {
					return nil, typeErr("fn:substring: bad length")
				}
				endF = startF + math.Floor(lenA.AsFloat()+0.5)
			}
			if math.IsNaN(startF) || math.IsNaN(endF) {
				return singleton(xdm.NewString("")), nil
			}
			var b strings.Builder
			for i, r := range []rune(s) {
				if p := float64(i + 1); p >= startF && p < endF {
					b.WriteRune(r)
				}
			}
			return singleton(xdm.NewString(b.String())), nil
		}})

	register(&Func{Name: "substring-before", MinArgs: 2, MaxArgs: 2, Props: det,
		Call: func(_ Context, args []xdm.Sequence) (xdm.Sequence, error) {
			s, err := oneString(args[0])
			if err != nil {
				return nil, err
			}
			sub, err := oneString(args[1])
			if err != nil {
				return nil, err
			}
			if i := strings.Index(s, sub); i >= 0 && sub != "" {
				return singleton(xdm.NewString(s[:i])), nil
			}
			return singleton(xdm.NewString("")), nil
		}})

	register(&Func{Name: "substring-after", MinArgs: 2, MaxArgs: 2, Props: det,
		Call: func(_ Context, args []xdm.Sequence) (xdm.Sequence, error) {
			s, err := oneString(args[0])
			if err != nil {
				return nil, err
			}
			sub, err := oneString(args[1])
			if err != nil {
				return nil, err
			}
			if i := strings.Index(s, sub); i >= 0 && sub != "" {
				return singleton(xdm.NewString(s[i+len(sub):])), nil
			}
			return singleton(xdm.NewString("")), nil
		}})

	register(&Func{Name: "translate", MinArgs: 3, MaxArgs: 3, Props: det,
		Call: func(_ Context, args []xdm.Sequence) (xdm.Sequence, error) {
			s, err := oneString(args[0])
			if err != nil {
				return nil, err
			}
			from, err := oneString(args[1])
			if err != nil {
				return nil, err
			}
			to, err := oneString(args[2])
			if err != nil {
				return nil, err
			}
			fromR, toR := []rune(from), []rune(to)
			var b strings.Builder
			for _, r := range s {
				idx := -1
				for i, f := range fromR {
					if f == r {
						idx = i
						break
					}
				}
				switch {
				case idx < 0:
					b.WriteRune(r)
				case idx < len(toR):
					b.WriteRune(toR[idx])
				}
			}
			return singleton(xdm.NewString(b.String())), nil
		}})

	register(&Func{Name: "compare", MinArgs: 2, MaxArgs: 2, Props: det,
		Call: func(_ Context, args []xdm.Sequence) (xdm.Sequence, error) {
			if len(args[0]) == 0 || len(args[1]) == 0 {
				return emptySeq, nil
			}
			a, err := oneString(args[0])
			if err != nil {
				return nil, err
			}
			b, err := oneString(args[1])
			if err != nil {
				return nil, err
			}
			return singleton(xdm.NewInteger(int64(strings.Compare(a, b)))), nil
		}})

	register(&Func{Name: "matches", MinArgs: 2, MaxArgs: 2, Props: detErr,
		Call: func(_ Context, args []xdm.Sequence) (xdm.Sequence, error) {
			re, s, err := regexArgs(args)
			if err != nil {
				return nil, err
			}
			return singleton(xdm.NewBoolean(re.MatchString(s))), nil
		}})

	register(&Func{Name: "replace", MinArgs: 3, MaxArgs: 3, Props: detErr,
		Call: func(_ Context, args []xdm.Sequence) (xdm.Sequence, error) {
			re, s, err := regexArgs(args)
			if err != nil {
				return nil, err
			}
			repl, err := oneString(args[2])
			if err != nil {
				return nil, err
			}
			// XPath uses $1..$9; Go regexp uses the same syntax.
			return singleton(xdm.NewString(re.ReplaceAllString(s, repl))), nil
		}})

	register(&Func{Name: "tokenize", MinArgs: 2, MaxArgs: 2, Props: detErr,
		Call: func(_ Context, args []xdm.Sequence) (xdm.Sequence, error) {
			re, s, err := regexArgs(args)
			if err != nil {
				return nil, err
			}
			if s == "" {
				return emptySeq, nil
			}
			var out xdm.Sequence
			for _, tok := range re.Split(s, -1) {
				out = append(out, xdm.NewString(tok))
			}
			return out, nil
		}})

	register(&Func{Name: "string-to-codepoints", MinArgs: 1, MaxArgs: 1, Props: det,
		Call: func(_ Context, args []xdm.Sequence) (xdm.Sequence, error) {
			s, err := oneString(args[0])
			if err != nil {
				return nil, err
			}
			var out xdm.Sequence
			for _, r := range s {
				out = append(out, xdm.NewInteger(int64(r)))
			}
			return out, nil
		}})

	register(&Func{Name: "codepoints-to-string", MinArgs: 1, MaxArgs: 1, Props: detErr,
		Call: func(_ Context, args []xdm.Sequence) (xdm.Sequence, error) {
			var b strings.Builder
			for _, it := range args[0] {
				a := xdm.Atomize(it)
				cp := a.AsInt()
				if !isXMLChar(cp) {
					return nil, xdm.Errf("FOCH0001", "codepoint %d is not a valid XML character", cp)
				}
				b.WriteRune(rune(cp))
			}
			return singleton(xdm.NewString(b.String())), nil
		}})

	register(&Func{Name: "escape-uri", MinArgs: 2, MaxArgs: 2, Props: det,
		Call: func(_ Context, args []xdm.Sequence) (xdm.Sequence, error) {
			s, err := oneString(args[0])
			if err != nil {
				return nil, err
			}
			// Minimal percent-escaping of reserved characters.
			var b strings.Builder
			for _, c := range []byte(s) {
				if c <= ' ' || c == '%' || c == '"' || c >= 0x7f {
					b.WriteString("%" + hexByte(c))
				} else {
					b.WriteByte(c)
				}
			}
			return singleton(xdm.NewString(b.String())), nil
		}})
}

// isXMLChar reports whether cp is a valid XML 1.0 character (the Char
// production): 0x9 | 0xA | 0xD | [0x20-0xD7FF] | [0xE000-0xFFFD] |
// [0x10000-0x10FFFF]. Surrogate code points and most C0 controls are not.
func isXMLChar(cp int64) bool {
	switch {
	case cp == 0x9 || cp == 0xA || cp == 0xD:
		return true
	case cp >= 0x20 && cp <= 0xD7FF:
		return true
	case cp >= 0xE000 && cp <= 0xFFFD:
		return true
	case cp >= 0x10000 && cp <= 0x10FFFF:
		return true
	}
	return false
}

func hexByte(c byte) string {
	const hexDigits = "0123456789ABCDEF"
	return string([]byte{hexDigits[c>>4], hexDigits[c&0xf]})
}

func stringArgOrContext(ctx Context, args []xdm.Sequence) (string, error) {
	if len(args) == 0 {
		it, ok := ctx.ContextItem()
		if !ok {
			return "", xdm.Errf("XPDY0002", "no context item")
		}
		return xdm.StringValue(it), nil
	}
	return oneString(args[0])
}

func stringPredicate(pred func(s, sub string) bool) func(Context, []xdm.Sequence) (xdm.Sequence, error) {
	return func(_ Context, args []xdm.Sequence) (xdm.Sequence, error) {
		s, err := oneString(args[0])
		if err != nil {
			return nil, err
		}
		sub, err := oneString(args[1])
		if err != nil {
			return nil, err
		}
		return singleton(xdm.NewBoolean(pred(s, sub))), nil
	}
}

// regexArgs compiles the pattern argument (arg[1]) and returns the subject.
func regexArgs(args []xdm.Sequence) (*regexp.Regexp, string, error) {
	s, err := oneString(args[0])
	if err != nil {
		return nil, "", err
	}
	pat, err := oneString(args[1])
	if err != nil {
		return nil, "", err
	}
	re, err := regexp.Compile(pat)
	if err != nil {
		return nil, "", xdm.Errf("FORX0002", "invalid regular expression %q: %v", pat, err)
	}
	return re, s, nil
}
