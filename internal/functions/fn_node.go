package functions

import (
	"fmt"
	"os"
	"time"

	"xqgo/internal/xdm"
)

// Node, boolean, numeric, date and diagnostic functions.

func init() {
	det := Properties{Deterministic: true}
	detErr := Properties{Deterministic: true, CanRaiseError: true}

	// ---- booleans ----
	register(&Func{Name: "true", MinArgs: 0, MaxArgs: 0, Props: det,
		Call: func(_ Context, _ []xdm.Sequence) (xdm.Sequence, error) {
			return singleton(xdm.True), nil
		}})
	register(&Func{Name: "false", MinArgs: 0, MaxArgs: 0, Props: det,
		Call: func(_ Context, _ []xdm.Sequence) (xdm.Sequence, error) {
			return singleton(xdm.False), nil
		}})
	register(&Func{Name: "not", MinArgs: 1, MaxArgs: 1, Props: det,
		Call: func(_ Context, args []xdm.Sequence) (xdm.Sequence, error) {
			b, err := xdm.EffectiveBoolean(args[0])
			if err != nil {
				return nil, err
			}
			return singleton(xdm.NewBoolean(!b)), nil
		}})
	register(&Func{Name: "boolean", MinArgs: 1, MaxArgs: 1, Props: det,
		Call: func(_ Context, args []xdm.Sequence) (xdm.Sequence, error) {
			b, err := xdm.EffectiveBoolean(args[0])
			if err != nil {
				return nil, err
			}
			return singleton(xdm.NewBoolean(b)), nil
		}})

	// ---- accessors ----
	register(&Func{Name: "data", MinArgs: 1, MaxArgs: 1, Props: det,
		Call: func(_ Context, args []xdm.Sequence) (xdm.Sequence, error) {
			out := make(xdm.Sequence, len(args[0]))
			for i, it := range args[0] {
				out[i] = xdm.Atomize(it)
			}
			return out, nil
		}})
	register(&Func{Name: "node-name", MinArgs: 1, MaxArgs: 1, Props: det,
		Call: func(_ Context, args []xdm.Sequence) (xdm.Sequence, error) {
			n, err := oneNode(args[0])
			if err != nil || n == nil {
				return emptySeq, err
			}
			if n.NodeName().IsZero() {
				return emptySeq, nil
			}
			return singleton(xdm.NewQName(n.NodeName())), nil
		}})
	register(&Func{Name: "name", MinArgs: 0, MaxArgs: 1,
		Props: Properties{Deterministic: true, UsesContext: true},
		Call: func(ctx Context, args []xdm.Sequence) (xdm.Sequence, error) {
			n, err := nodeArgOrContext(ctx, args)
			if err != nil || n == nil {
				return singleton(xdm.NewString("")), err
			}
			return singleton(xdm.NewString(n.NodeName().String())), nil
		}})
	register(&Func{Name: "local-name", MinArgs: 0, MaxArgs: 1,
		Props: Properties{Deterministic: true, UsesContext: true},
		Call: func(ctx Context, args []xdm.Sequence) (xdm.Sequence, error) {
			n, err := nodeArgOrContext(ctx, args)
			if err != nil || n == nil {
				return singleton(xdm.NewString("")), err
			}
			return singleton(xdm.NewString(n.NodeName().Local)), nil
		}})
	register(&Func{Name: "namespace-uri", MinArgs: 0, MaxArgs: 1,
		Props: Properties{Deterministic: true, UsesContext: true},
		Call: func(ctx Context, args []xdm.Sequence) (xdm.Sequence, error) {
			n, err := nodeArgOrContext(ctx, args)
			if err != nil || n == nil {
				return singleton(xdm.NewAnyURI("")), err
			}
			return singleton(xdm.NewAnyURI(n.NodeName().Space)), nil
		}})
	register(&Func{Name: "root", MinArgs: 0, MaxArgs: 1,
		Props: Properties{Deterministic: true, UsesContext: true, DocOrder: true},
		Call: func(ctx Context, args []xdm.Sequence) (xdm.Sequence, error) {
			n, err := nodeArgOrContext(ctx, args)
			if err != nil || n == nil {
				return emptySeq, err
			}
			r := n
			for p := r.Parent(); p != nil; p = p.Parent() {
				r = p
			}
			return xdm.Sequence{r}, nil
		}})
	register(&Func{Name: "base-uri", MinArgs: 0, MaxArgs: 1,
		Props: Properties{Deterministic: true, UsesContext: true},
		Call: func(ctx Context, args []xdm.Sequence) (xdm.Sequence, error) {
			n, err := nodeArgOrContext(ctx, args)
			if err != nil || n == nil {
				return emptySeq, err
			}
			if n.BaseURI() == "" {
				return emptySeq, nil
			}
			return singleton(xdm.NewAnyURI(n.BaseURI())), nil
		}})
	register(&Func{Name: "document-uri", MinArgs: 1, MaxArgs: 1, Props: det,
		Call: func(_ Context, args []xdm.Sequence) (xdm.Sequence, error) {
			n, err := oneNode(args[0])
			if err != nil || n == nil {
				return emptySeq, err
			}
			if n.Kind() != xdm.DocumentNode || n.BaseURI() == "" {
				return emptySeq, nil
			}
			return singleton(xdm.NewAnyURI(n.BaseURI())), nil
		}})

	// ---- documents ----
	docProps := Properties{Deterministic: true, DocOrder: true, CanRaiseError: true}
	docCall := func(ctx Context, args []xdm.Sequence) (xdm.Sequence, error) {
		if len(args[0]) == 0 {
			return emptySeq, nil
		}
		uri, err := oneString(args[0])
		if err != nil {
			return nil, err
		}
		n, err := ctx.Doc(uri)
		if err != nil {
			return nil, err
		}
		return xdm.Sequence{n}, nil
	}
	register(&Func{Name: "doc", MinArgs: 1, MaxArgs: 1, Props: docProps, Call: docCall})
	// The paper (and XQuery 1.0 working drafts) use document(); keep both.
	register(&Func{Name: "document", MinArgs: 1, MaxArgs: 1, Props: docProps, Call: docCall})
	register(&Func{Name: "collection", MinArgs: 1, MaxArgs: 1, Props: docProps,
		Call: func(ctx Context, args []xdm.Sequence) (xdm.Sequence, error) {
			uri, err := oneString(args[0])
			if err != nil {
				return nil, err
			}
			return ctx.Collection(uri)
		}})

	// ---- numerics ----
	register(&Func{Name: "number", MinArgs: 0, MaxArgs: 1,
		Props: Properties{Deterministic: true, UsesContext: true},
		Call: func(ctx Context, args []xdm.Sequence) (xdm.Sequence, error) {
			var a xdm.Atomic
			if len(args) == 0 {
				it, ok := ctx.ContextItem()
				if !ok {
					return nil, xdm.Errf("XPDY0002", "fn:number(): no context item")
				}
				a = xdm.Atomize(it)
			} else {
				var ok bool
				var err error
				a, ok, err = oneAtomic(args[0])
				if err != nil {
					return nil, err
				}
				if !ok {
					return singleton(xdm.NewDouble(nan())), nil
				}
			}
			d, err := xdm.Cast(a, xdm.TDouble)
			if err != nil {
				return singleton(xdm.NewDouble(nan())), nil
			}
			return singleton(d), nil
		}})
	register(&Func{Name: "abs", MinArgs: 1, MaxArgs: 1, Props: detErr,
		Call: numericUnary(func(f float64) float64 {
			if f < 0 {
				return -f
			}
			if f == 0 {
				return 0 // fn:abs(-0.0e0) is positive zero per F&O
			}
			return f
		})})
	register(&Func{Name: "floor", MinArgs: 1, MaxArgs: 1, Props: detErr,
		Call: numericUnary(floorF)})
	register(&Func{Name: "ceiling", MinArgs: 1, MaxArgs: 1, Props: detErr,
		Call: numericUnary(ceilF)})
	register(&Func{Name: "round", MinArgs: 1, MaxArgs: 1, Props: detErr,
		Call: numericUnary(func(f float64) float64 { return floorF(f + 0.5) })})
	register(&Func{Name: "round-half-to-even", MinArgs: 1, MaxArgs: 2, Props: detErr,
		Call: func(_ Context, args []xdm.Sequence) (xdm.Sequence, error) {
			a, ok, err := numericArg(args[0])
			if err != nil || !ok {
				return emptySeq, err
			}
			f := a.AsFloat()
			fl := floorF(f)
			frac := f - fl
			var r float64
			switch {
			case frac < 0.5:
				r = fl
			case frac > 0.5:
				r = fl + 1
			case int64(fl)%2 == 0:
				r = fl
			default:
				r = fl + 1
			}
			return singleton(retypeNumeric(a, r)), nil
		}})

	// ---- dates ----
	register(&Func{Name: "current-dateTime", MinArgs: 0, MaxArgs: 0,
		Props: Properties{Deterministic: false},
		Call: func(ctx Context, _ []xdm.Sequence) (xdm.Sequence, error) {
			return singleton(ctx.CurrentDateTime()), nil
		}})
	register(&Func{Name: "current-date", MinArgs: 0, MaxArgs: 0,
		Props: Properties{Deterministic: false},
		Call: func(ctx Context, _ []xdm.Sequence) (xdm.Sequence, error) {
			d, err := xdm.Cast(ctx.CurrentDateTime(), xdm.TDate)
			if err != nil {
				return nil, err
			}
			return singleton(d), nil
		}})
	register(&Func{Name: "current-time", MinArgs: 0, MaxArgs: 0,
		Props: Properties{Deterministic: false},
		Call: func(ctx Context, _ []xdm.Sequence) (xdm.Sequence, error) {
			d, err := xdm.Cast(ctx.CurrentDateTime(), xdm.TTime)
			if err != nil {
				return nil, err
			}
			return singleton(d), nil
		}})
	// The paper's sampler: date("2002-5-20") constructor and add-date.
	register(&Func{Name: "date", MinArgs: 1, MaxArgs: 1, Props: detErr,
		Call: func(_ Context, args []xdm.Sequence) (xdm.Sequence, error) {
			s, err := oneString(args[0])
			if err != nil {
				return nil, err
			}
			d, err := xdm.Cast(xdm.NewString(s), xdm.TDate)
			if err != nil {
				return nil, err
			}
			return singleton(d), nil
		}})
	register(&Func{Name: "add-date", MinArgs: 2, MaxArgs: 2, Props: detErr,
		Call: func(_ Context, args []xdm.Sequence) (xdm.Sequence, error) {
			d, ok, err := oneAtomic(args[0])
			if err != nil || !ok {
				return emptySeq, err
			}
			dur, ok, err := oneAtomic(args[1])
			if err != nil || !ok {
				return emptySeq, err
			}
			r, err := xdm.Arith(xdm.OpAdd, d, dur)
			if err != nil {
				return nil, err
			}
			return singleton(r), nil
		}})
	for _, comp := range []struct {
		name string
		from xdm.TypeCode
		get  func(t time.Time) int64
	}{
		{"year-from-dateTime", xdm.TDateTime, func(t time.Time) int64 { return int64(t.Year()) }},
		{"month-from-dateTime", xdm.TDateTime, func(t time.Time) int64 { return int64(t.Month()) }},
		{"day-from-dateTime", xdm.TDateTime, func(t time.Time) int64 { return int64(t.Day()) }},
		{"hours-from-dateTime", xdm.TDateTime, func(t time.Time) int64 { return int64(t.Hour()) }},
		{"minutes-from-dateTime", xdm.TDateTime, func(t time.Time) int64 { return int64(t.Minute()) }},
		{"year-from-date", xdm.TDate, func(t time.Time) int64 { return int64(t.Year()) }},
		{"month-from-date", xdm.TDate, func(t time.Time) int64 { return int64(t.Month()) }},
		{"day-from-date", xdm.TDate, func(t time.Time) int64 { return int64(t.Day()) }},
	} {
		comp := comp
		register(&Func{Name: comp.name, MinArgs: 1, MaxArgs: 1, Props: detErr,
			Call: func(_ Context, args []xdm.Sequence) (xdm.Sequence, error) {
				a, ok, err := oneAtomic(args[0])
				if err != nil || !ok {
					return emptySeq, err
				}
				if a.T != comp.from {
					if a, err = xdm.Cast(a, comp.from); err != nil {
						return nil, err
					}
				}
				t := time.Unix(0, a.I).UTC()
				return singleton(xdm.NewInteger(comp.get(t))), nil
			}})
	}

	// ---- QName helpers ----
	register(&Func{Name: "QName", MinArgs: 2, MaxArgs: 2, Props: detErr,
		Call: func(_ Context, args []xdm.Sequence) (xdm.Sequence, error) {
			uri, err := oneString(args[0])
			if err != nil {
				return nil, err
			}
			lex, err := oneString(args[1])
			if err != nil {
				return nil, err
			}
			prefix, local := xdm.SplitLexical(lex)
			return singleton(xdm.NewQName(xdm.QName{Space: uri, Local: local, Prefix: prefix})), nil
		}})
	register(&Func{Name: "local-name-from-QName", MinArgs: 1, MaxArgs: 1, Props: det,
		Call: func(_ Context, args []xdm.Sequence) (xdm.Sequence, error) {
			a, ok, err := oneAtomic(args[0])
			if err != nil || !ok {
				return emptySeq, err
			}
			return singleton(xdm.NewString(a.Q.Local)), nil
		}})
	register(&Func{Name: "namespace-uri-from-QName", MinArgs: 1, MaxArgs: 1, Props: det,
		Call: func(_ Context, args []xdm.Sequence) (xdm.Sequence, error) {
			a, ok, err := oneAtomic(args[0])
			if err != nil || !ok {
				return emptySeq, err
			}
			return singleton(xdm.NewAnyURI(a.Q.Space)), nil
		}})

	// ---- diagnostics ----
	register(&Func{Name: "error", MinArgs: 0, MaxArgs: 2,
		Props: Properties{CanRaiseError: true},
		Call: func(_ Context, args []xdm.Sequence) (xdm.Sequence, error) {
			code := "FOER0000"
			msg := "error signalled by fn:error()"
			if len(args) > 0 && len(args[0]) > 0 {
				code = xdm.StringValue(args[0][0])
			}
			if len(args) > 1 {
				s, err := oneString(args[1])
				if err == nil && s != "" {
					msg = s
				}
			}
			return nil, xdm.Errf(code, "%s", msg)
		}})
	register(&Func{Name: "trace", MinArgs: 2, MaxArgs: 2,
		Props: Properties{Deterministic: false},
		Call: func(_ Context, args []xdm.Sequence) (xdm.Sequence, error) {
			label, _ := oneString(args[1])
			fmt.Fprintf(os.Stderr, "trace: %s: %d item(s)\n", label, len(args[0]))
			return args[0], nil
		}})
}

func nodeArgOrContext(ctx Context, args []xdm.Sequence) (xdm.Node, error) {
	if len(args) == 0 {
		it, ok := ctx.ContextItem()
		if !ok {
			return nil, xdm.Errf("XPDY0002", "no context item")
		}
		n, isNode := it.(xdm.Node)
		if !isNode {
			return nil, typeErr("context item is not a node")
		}
		return n, nil
	}
	return oneNode(args[0])
}

func numericUnary(f func(float64) float64) func(Context, []xdm.Sequence) (xdm.Sequence, error) {
	return func(_ Context, args []xdm.Sequence) (xdm.Sequence, error) {
		a, ok, err := numericArg(args[0])
		if err != nil || !ok {
			return emptySeq, err
		}
		return singleton(retypeNumeric(a, f(a.AsFloat()))), nil
	}
}

// retypeNumeric rebuilds a numeric result in the type family of the input.
func retypeNumeric(in xdm.Atomic, f float64) xdm.Atomic {
	switch in.T {
	case xdm.TInteger:
		return xdm.NewInteger(int64(f))
	case xdm.TDecimal:
		return xdm.NewDecimalFloat(f)
	case xdm.TFloat:
		return xdm.NewFloat(f)
	default:
		return xdm.NewDouble(f)
	}
}

func floorF(f float64) float64 {
	i := float64(int64(f))
	if f < i {
		return i - 1
	}
	return i
}

func ceilF(f float64) float64 {
	i := float64(int64(f))
	if f > i {
		return i + 1
	}
	return i
}

func nan() float64 {
	var zero float64
	return zero / zero
}
