// Package functions implements the F&O built-in function library. Each
// function carries a declarative property record (order preservation, node
// creation, context use, determinism) — per the paper, "this information is
// given declaratively, not hard coded in the query processor": the optimizer
// and runtime consult the table instead of switching on names.
package functions

import (
	"fmt"

	"xqgo/internal/xdm"
)

// Context is the slice of the dynamic context visible to built-ins. The
// runtime's evaluation frame implements it.
type Context interface {
	// ContextItem returns the current context item; the bool is false when
	// the context item is undefined.
	ContextItem() (xdm.Item, bool)
	// Position and Size return the focus position/size (1-based), valid
	// when a context item exists.
	Position() int64
	Size() (int64, error)
	// Doc resolves a document URI (fn:doc / the paper's document()).
	Doc(uri string) (xdm.Node, error)
	// Collection resolves a collection URI.
	Collection(uri string) (xdm.Sequence, error)
	// CurrentDateTime is the (stable) current dateTime of the evaluation.
	CurrentDateTime() xdm.Atomic
}

// Properties is the declarative semantic record of a first-order operator.
type Properties struct {
	// DocOrder: result is guaranteed in document order, duplicate-free.
	DocOrder bool
	// CreatesNodes: the function can return newly constructed nodes.
	CreatesNodes bool
	// UsesContext / UsesPosition: depends on the focus.
	UsesContext  bool
	UsesPosition bool
	// Deterministic: same args, same result (false for current-dateTime
	// within different executions, trace, error).
	Deterministic bool
	// TransparentToErrors: can be reordered across error-raising
	// expressions (used by the optimizer for CSE / reordering).
	CanRaiseError bool
}

// Func is one built-in function (one arity range).
type Func struct {
	Name    string // local name in the fn namespace
	MinArgs int
	MaxArgs int // -1 for variadic (fn:concat)
	Props   Properties
	Call    func(ctx Context, args []xdm.Sequence) (xdm.Sequence, error)
}

// registry maps local name -> Func.
var registry = map[string]*Func{}

func register(f *Func) {
	if _, dup := registry[f.Name]; dup {
		panic("functions: duplicate registration of " + f.Name)
	}
	registry[f.Name] = f
}

// Lookup finds a built-in by local name (within the fn namespace) and
// checks the arity. A nil return with ok=false means unknown name.
func Lookup(local string, nargs int) (*Func, error) {
	f, ok := registry[local]
	if !ok {
		return nil, nil
	}
	if nargs < f.MinArgs || (f.MaxArgs >= 0 && nargs > f.MaxArgs) {
		return nil, fmt.Errorf("fn:%s expects %s, got %d arguments",
			local, arityString(f), nargs)
	}
	return f, nil
}

// Known reports whether a local name is a registered built-in.
func Known(local string) bool {
	_, ok := registry[local]
	return ok
}

func arityString(f *Func) string {
	if f.MaxArgs < 0 {
		return fmt.Sprintf("at least %d", f.MinArgs)
	}
	if f.MinArgs == f.MaxArgs {
		return fmt.Sprintf("%d", f.MinArgs)
	}
	return fmt.Sprintf("%d..%d", f.MinArgs, f.MaxArgs)
}

// ---- shared helpers ----

// errEmpty is returned where a required argument is an empty sequence.
func typeErr(format string, args ...any) error { return xdm.ErrType(format, args...) }

// oneAtomic atomizes a single-item argument; empty yields ok=false.
func oneAtomic(seq xdm.Sequence) (xdm.Atomic, bool, error) {
	switch len(seq) {
	case 0:
		return xdm.Atomic{}, false, nil
	case 1:
		return xdm.Atomize(seq[0]), true, nil
	default:
		return xdm.Atomic{}, false, typeErr("expected at most one item, got %d", len(seq))
	}
}

// oneString returns the string value of an optional single-item argument
// (empty sequence yields "").
func oneString(seq xdm.Sequence) (string, error) {
	a, ok, err := oneAtomic(seq)
	if err != nil || !ok {
		return "", err
	}
	return a.Lexical(), nil
}

// oneNode returns a single node argument; empty yields nil.
func oneNode(seq xdm.Sequence) (xdm.Node, error) {
	switch len(seq) {
	case 0:
		return nil, nil
	case 1:
		n, ok := seq[0].(xdm.Node)
		if !ok {
			return nil, typeErr("expected a node")
		}
		return n, nil
	default:
		return nil, typeErr("expected at most one node, got %d items", len(seq))
	}
}

// numericArg casts an optional single atomic to double for numeric
// built-ins, reporting presence.
func numericArg(seq xdm.Sequence) (xdm.Atomic, bool, error) {
	a, ok, err := oneAtomic(seq)
	if err != nil || !ok {
		return xdm.Atomic{}, ok, err
	}
	if a.T == xdm.TUntyped {
		d, err := xdm.Cast(a, xdm.TDouble)
		if err != nil {
			return xdm.Atomic{}, false, err
		}
		return d, true, nil
	}
	if !a.T.IsNumeric() {
		return xdm.Atomic{}, false, typeErr("expected a numeric value, got %s", a.T)
	}
	return a, true, nil
}

func singleton(a xdm.Atomic) xdm.Sequence { return xdm.Sequence{a} }

var emptySeq = xdm.Sequence{}
