package structjoin

import (
	"xqgo/internal/store"
	"xqgo/internal/xdm"
	"xqgo/internal/xtypes"
)

// Binary structural joins: given the posting lists of a candidate-ancestor
// name A and candidate-descendant name D, produce the (a, d) pairs with a
// an ancestor (or parent) of d.

// StackTreeDesc is the Stack-Tree-Desc algorithm (Al-Khalifa et al.): one
// synchronized pass over both lists with a stack of nested ancestors;
// output is sorted by descendant. Time O(|A| + |D| + |out|).
func StackTreeDesc(ancestors, descendants List, parentOnly bool) []Pair {
	var out []Pair
	var stack []Posting
	a, d := 0, 0
	for a < len(ancestors) || d < len(descendants) {
		// Pop stack entries that end before the next candidate begins.
		next := int64(1<<62 - 1)
		if a < len(ancestors) {
			next = ancestors[a].Region.Start
		}
		if d < len(descendants) && descendants[d].Region.Start < next {
			next = descendants[d].Region.Start
		}
		for len(stack) > 0 && stack[len(stack)-1].Region.End < next {
			stack = stack[:len(stack)-1]
		}
		switch {
		case a < len(ancestors) && (d >= len(descendants) ||
			ancestors[a].Region.Start < descendants[d].Region.Start):
			stack = append(stack, ancestors[a])
			a++
		case d < len(descendants):
			// Emit all stacked ancestors of this descendant.
			if parentOnly {
				for i := len(stack) - 1; i >= 0; i-- {
					if stack[i].Region.Level+1 == descendants[d].Region.Level &&
						stack[i].Region.Contains(descendants[d].Region) {
						out = append(out, Pair{Ancestor: stack[i], Descendant: descendants[d]})
						break
					}
				}
			} else {
				for i := 0; i < len(stack); i++ {
					if stack[i].Region.Contains(descendants[d].Region) {
						out = append(out, Pair{Ancestor: stack[i], Descendant: descendants[d]})
					}
				}
			}
			d++
		default:
			return out
		}
	}
	return out
}

// TreeMergeDesc is the merge baseline (tree-merge join): for each
// descendant, scan backwards-compatible ancestor candidates without a
// stack. Worst case O(|A| * |D|); the structural-join papers' strawman.
func TreeMergeDesc(ancestors, descendants List, parentOnly bool) []Pair {
	var out []Pair
	a := 0
	for d := 0; d < len(descendants); d++ {
		dr := descendants[d].Region
		// advance a past ancestors that end before this descendant starts
		for a < len(ancestors) && ancestors[a].Region.End < dr.Start {
			a++
		}
		for i := a; i < len(ancestors) && ancestors[i].Region.Start < dr.Start; i++ {
			ar := ancestors[i].Region
			if !ar.Contains(dr) {
				continue
			}
			if parentOnly && ar.Level+1 != dr.Level {
				continue
			}
			out = append(out, Pair{Ancestor: ancestors[i], Descendant: descendants[d]})
		}
	}
	return out
}

// NavigationDesc is the index-free baseline: walk the document tree from
// each candidate ancestor and collect matching descendants by navigation —
// what a query engine without structural indexes does.
func NavigationDesc(d *store.Document, ancestorName, descendantName xdm.QName, parentOnly bool) []Pair {
	test := xtypes.NodeTest{Name: descendantName}
	var out []Pair
	for id := int32(0); id < int32(d.NumNodes()); id++ {
		if d.Kind(id) != xdm.ElementNode || !d.NameOf(id).Equal(ancestorName) {
			continue
		}
		anc := Posting{Region: d.Region(id), ID: id}
		if parentOnly {
			for c := d.FirstChildID(id); c >= 0; c = d.NextSiblingID(c) {
				if d.Kind(c) == xdm.ElementNode && test.MatchesNode(d.Node(c), xdm.ElementNode) {
					out = append(out, Pair{Ancestor: anc, Descendant: Posting{Region: d.Region(c), ID: c}})
				}
			}
			continue
		}
		end := d.EndID(id)
		for c := id + 1; c <= end; c++ {
			if d.Kind(c) == xdm.ElementNode && d.NameOf(c).Equal(descendantName) {
				out = append(out, Pair{Ancestor: anc, Descendant: Posting{Region: d.Region(c), ID: c}})
			}
		}
	}
	return out
}

// DistinctDescendants projects a pair list to its distinct descendants in
// document order (what a path step actually returns). Works for any pair
// order: stack-tree emits descendant-sorted pairs (fast consecutive dedup),
// navigation emits ancestor-sorted pairs (full dedup + sort).
func DistinctDescendants(pairs []Pair) List {
	var out List
	var lastID int32 = -1
	sorted := true
	for _, p := range pairs {
		if p.Descendant.ID == lastID {
			continue
		}
		if len(out) > 0 && p.Descendant.ID < lastID {
			sorted = false
		}
		out = append(out, p.Descendant)
		lastID = p.Descendant.ID
	}
	if sorted {
		return out
	}
	seen := make(map[int32]bool, len(out))
	dedup := out[:0]
	for _, p := range out {
		if !seen[p.ID] {
			seen[p.ID] = true
			dedup = append(dedup, p)
		}
	}
	sortList(dedup)
	return dedup
}

// UpperBoundStart returns the number of leading postings in the
// Start-sorted list l whose Region.Start is <= start. Morsel-partitioned
// joins use it to prune the ancestor list per descendant chunk: an ancestor
// can only contain descendants that start after it, so ancestors starting
// past the chunk's last descendant cannot pair with anything in the chunk.
func UpperBoundStart(l List, start int64) int {
	lo, hi := 0, len(l)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if l[mid].Region.Start <= start {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// DistinctAncestors projects to distinct ancestors (document order).
func DistinctAncestors(pairs []Pair) List {
	seen := map[int32]bool{}
	var out List
	for _, p := range pairs {
		if !seen[p.Ancestor.ID] {
			seen[p.Ancestor.ID] = true
			out = append(out, p.Ancestor)
		}
	}
	sortList(out)
	return out
}
