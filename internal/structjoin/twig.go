package structjoin

import (
	"fmt"
	"strings"

	"xqgo/internal/labeling"
	"xqgo/internal/xdm"
)

// Twig patterns and the holistic twig-join algorithms (PathStack for linear
// paths, TwigStack for branching twigs, Bruno/Koudas/Srivastava). The
// holistic property: intermediate results are root-to-leaf path solutions
// that are guaranteed to extend to a full match for ancestor/descendant
// edges, instead of the possibly-huge pairwise outputs of a binary-join
// plan — exactly the effect experiment E6 measures.

// TwigNode is one node of a twig pattern.
type TwigNode struct {
	Name xdm.QName
	// ChildEdge: the edge to the parent is parent/child rather than
	// ancestor/descendant.
	ChildEdge bool
	Children  []*TwigNode

	// runtime state
	stream List
	pos    int
	stack  []twigEntry
	parent *TwigNode
}

type twigEntry struct {
	post Posting
	// ptr is the index of the top of the parent stack at push time (-1 if
	// the parent stack was empty / node is root).
	ptr int
	// count is the number of root-to-this partial solutions this entry
	// participates in.
	count int64
}

// Path builds a linear twig a//b//c... (ancestor/descendant edges).
func Path(names ...string) *TwigNode {
	var root, cur *TwigNode
	for _, n := range names {
		node := &TwigNode{Name: xdm.LocalName(n)}
		if root == nil {
			root = node
		} else {
			cur.Children = append(cur.Children, node)
		}
		cur = node
	}
	return root
}

// ParseTwig parses a compact twig syntax: "a//b", "a/b" (child edge),
// branches in brackets: "a[b//c]//d".
func ParseTwig(s string) (*TwigNode, error) {
	p := &twigParser{src: s}
	n, err := p.node(false)
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("twig: trailing input at %d in %q", p.pos, s)
	}
	return n, nil
}

type twigParser struct {
	src string
	pos int
}

func (p *twigParser) node(childEdge bool) (*TwigNode, error) {
	start := p.pos
	for p.pos < len(p.src) && (isTwigNameChar(p.src[p.pos])) {
		p.pos++
	}
	if p.pos == start {
		return nil, fmt.Errorf("twig: expected a name at %d in %q", p.pos, p.src)
	}
	n := &TwigNode{Name: xdm.LocalName(p.src[start:p.pos]), ChildEdge: childEdge}
	for p.pos < len(p.src) {
		switch {
		case p.src[p.pos] == '[':
			p.pos++
			child, err := p.branchContent()
			if err != nil {
				return nil, err
			}
			if p.pos >= len(p.src) || p.src[p.pos] != ']' {
				return nil, fmt.Errorf("twig: missing ] in %q", p.src)
			}
			p.pos++
			n.Children = append(n.Children, child)
		case strings.HasPrefix(p.src[p.pos:], "//"):
			p.pos += 2
			child, err := p.node(false)
			if err != nil {
				return nil, err
			}
			n.Children = append(n.Children, child)
			return n, nil
		case p.src[p.pos] == '/':
			p.pos++
			child, err := p.node(true)
			if err != nil {
				return nil, err
			}
			n.Children = append(n.Children, child)
			return n, nil
		default:
			return n, nil
		}
	}
	return n, nil
}

func (p *twigParser) branchContent() (*TwigNode, error) {
	if strings.HasPrefix(p.src[p.pos:], "//") {
		p.pos += 2
		return p.node(false)
	}
	return p.node(false)
}

func isTwigNameChar(c byte) bool {
	return c == '-' || c == '_' || c == ':' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

// String renders the twig pattern.
func (n *TwigNode) String() string {
	var b strings.Builder
	n.render(&b)
	return b.String()
}

func (n *TwigNode) render(b *strings.Builder) {
	b.WriteString(n.Name.Local)
	for i, c := range n.Children {
		last := i == len(n.Children)-1
		if !last {
			b.WriteByte('[')
		} else if c.ChildEdge {
			b.WriteByte('/')
		} else {
			b.WriteString("//")
		}
		c.render(b)
		if !last {
			b.WriteByte(']')
		}
	}
}

// nodes collects the pattern nodes (pre-order) and sets parent links.
func (n *TwigNode) nodes() []*TwigNode {
	var out []*TwigNode
	var walk func(t *TwigNode, parent *TwigNode)
	walk = func(t *TwigNode, parent *TwigNode) {
		t.parent = parent
		out = append(out, t)
		for _, c := range t.Children {
			walk(c, t)
		}
	}
	walk(n, nil)
	return out
}

// TwigStats reports the work and intermediate-result volume of a twig join.
type TwigStats struct {
	// PathSolutions is the number of root-to-leaf solutions produced (the
	// holistic algorithms' total intermediate size).
	PathSolutions int64
	// Pushes and Advances count stack pushes and stream advances.
	Pushes   int64
	Advances int64
}

const infStart = int64(1)<<62 - 1

func (t *TwigNode) next() Posting {
	if t.pos < len(t.stream) {
		return t.stream[t.pos]
	}
	return Posting{Region: labeling.Region{Start: infStart, End: infStart}}
}

func (t *TwigNode) eof() bool { return t.pos >= len(t.stream) }

// TwigStack runs the holistic twig join of pattern root against an index.
// It returns the total number of root-to-leaf path solutions (merged-match
// counting is done by MergeCount) and work statistics.
func TwigStack(root *TwigNode, idx *Index) TwigStats {
	nodes := root.nodes()
	for _, q := range nodes {
		q.stream = idx.Elements(q.Name)
		q.pos = 0
		q.stack = q.stack[:0]
	}
	var stats TwigStats

	var getNext func(q *TwigNode) *TwigNode
	getNext = func(q *TwigNode) *TwigNode {
		if len(q.Children) == 0 {
			return q
		}
		var nmin, nmax *TwigNode
		for _, qi := range q.Children {
			ni := getNext(qi)
			if ni != qi {
				return ni
			}
			if nmin == nil || qi.next().Region.Start < nmin.next().Region.Start {
				nmin = qi
			}
			if nmax == nil || qi.next().Region.Start > nmax.next().Region.Start {
				nmax = qi
			}
		}
		for q.next().Region.End < nmax.next().Region.Start {
			q.pos++
			stats.Advances++
		}
		if q.next().Region.Start < nmin.next().Region.Start {
			return q
		}
		return nmin
	}

	anyLeafLive := func() bool {
		for _, q := range nodes {
			if len(q.Children) == 0 && !q.eof() {
				return true
			}
		}
		return false
	}

	for anyLeafLive() {
		qact := getNext(root)
		if qact.eof() {
			break
		}
		cur := qact.next()
		// Clean ended entries from the parent stack and own stack.
		if qact.parent != nil {
			cleanStack(qact.parent, cur.Region.Start)
		}
		cleanStack(qact, cur.Region.Start)
		if qact.parent == nil || len(qact.parent.stack) > 0 {
			// push with count propagation
			var cnt int64 = 1
			ptr := -1
			if qact.parent != nil {
				ptr = len(qact.parent.stack) - 1
				cnt = 0
				for i := 0; i <= ptr; i++ {
					e := &qact.parent.stack[i]
					if qact.ChildEdge && e.post.Region.Level+1 != cur.Region.Level {
						continue
					}
					cnt += e.count
				}
			}
			if cnt > 0 {
				qact.stack = append(qact.stack, twigEntry{post: cur, ptr: ptr, count: cnt})
				stats.Pushes++
				if len(qact.Children) == 0 {
					stats.PathSolutions += cnt
					qact.stack = qact.stack[:len(qact.stack)-1] // leaves pop immediately
				}
			}
		}
		qact.pos++
		stats.Advances++
	}
	return stats
}

func cleanStack(q *TwigNode, nextStart int64) {
	for len(q.stack) > 0 && q.stack[len(q.stack)-1].post.Region.End < nextStart {
		q.stack = q.stack[:len(q.stack)-1]
	}
}

// BinaryPlanStats decomposes the twig into binary structural joins (one per
// edge, evaluated independently on the name posting lists) and reports the
// total intermediate pairs a binary-join plan materializes — the comparator
// of E6.
func BinaryPlanStats(root *TwigNode, idx *Index) (totalPairs int64) {
	var walk func(t *TwigNode)
	walk = func(t *TwigNode) {
		for _, c := range t.Children {
			pairs := StackTreeDesc(idx.Elements(t.Name), idx.Elements(c.Name), c.ChildEdge)
			totalPairs += int64(len(pairs))
			walk(c)
		}
	}
	walk(root)
	return totalPairs
}
