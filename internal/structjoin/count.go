package structjoin

import (
	"xqgo/internal/store"
	"xqgo/internal/xdm"
)

// NavTwigCount counts the full twig embeddings (match tuples) of a pattern
// by direct tree navigation with memoization — the ground truth the join
// algorithms are validated against in tests, and the "navigation engine"
// data point of experiment E6.
func NavTwigCount(root *TwigNode, d *store.Document) int64 {
	memo := map[*TwigNode]map[int32]int64{}
	nodes := root.nodes()
	for _, q := range nodes {
		memo[q] = map[int32]int64{}
	}

	var embeddings func(q *TwigNode, id int32) int64
	embeddings = func(q *TwigNode, id int32) int64 {
		if v, ok := memo[q][id]; ok {
			return v
		}
		total := int64(1)
		for _, c := range q.Children {
			var sum int64
			if c.ChildEdge {
				for ch := d.FirstChildID(id); ch >= 0; ch = d.NextSiblingID(ch) {
					if d.Kind(ch) == xdm.ElementNode && d.NameOf(ch).Equal(c.Name) {
						sum += embeddings(c, ch)
					}
				}
			} else {
				end := d.EndID(id)
				for ch := id + 1; ch <= end; ch++ {
					if d.Kind(ch) == xdm.ElementNode && d.NameOf(ch).Equal(c.Name) {
						sum += embeddings(c, ch)
					}
				}
			}
			total *= sum
			if total == 0 {
				break
			}
		}
		memo[q][id] = total
		return total
	}

	var grand int64
	for id := int32(0); id < int32(d.NumNodes()); id++ {
		if d.Kind(id) == xdm.ElementNode && d.NameOf(id).Equal(root.Name) {
			grand += embeddings(root, id)
		}
	}
	return grand
}

// PathStack runs the holistic join for a linear path pattern. It is
// TwigStack restricted to one root-to-leaf chain (the PathStack algorithm);
// exposed separately so benchmarks can compare the two directly.
func PathStack(root *TwigNode, idx *Index) TwigStats {
	// For linear patterns TwigStack degenerates to PathStack: same stacks,
	// same pushes — no branching getNext work.
	return TwigStack(root, idx)
}

// IsLinear reports whether the pattern is a single chain.
func (n *TwigNode) IsLinear() bool {
	for q := n; ; {
		switch len(q.Children) {
		case 0:
			return true
		case 1:
			q = q.Children[0]
		default:
			return false
		}
	}
}
