package structjoin

// Output-producing holistic path join (the PathStack member of the
// TwigStack family, Bruno/Koudas/Srivastava): one synchronized pass over
// the k Start-sorted posting lists of a linear chain q1//q2/…//qk, with one
// stack per non-leaf step holding the currently open (nested) matches.
// Unlike the binary stack-tree plan, no intermediate pair list is ever
// materialized — total work is O(Σ|list_i| + |out|) regardless of how
// poorly the chain's prefixes select.
//
// TwigStack in twig.go is the counting variant over branching patterns;
// this file is the execution operator the runtime dispatches to, so it
// returns the actual leaf postings (what a path expression evaluates to).

// PathMatchLeaf returns the distinct postings of the last list that
// terminate at least one full root-to-leaf match of the chain, in document
// order. childEdge[i] constrains the edge between step i-1 and step i to
// parent/child; childEdge[0] is ignored (callers pre-filter the top list
// against the document root). Lists must be Start-sorted, as built by
// BuildIndex. The inputs are read-only, so concurrent calls over shared
// (differently pruned) lists are safe — the morsel decomposition the
// runtime uses relies on this.
func PathMatchLeaf(lists []List, childEdge []bool) List {
	k := len(lists)
	if k == 0 {
		return nil
	}
	if k == 1 {
		return append(List(nil), lists[0]...)
	}
	pos := make([]int, k)
	stacks := make([][]Posting, k-1) // leaf matches are emitted, never stacked
	var out List
	for pos[k-1] < len(lists[k-1]) {
		// qmin: stream with the smallest next Start. Ties go to the
		// shallower (outer) stream so an ancestor is stacked before an
		// equal-Start inner read could observe it missing.
		qmin := -1
		minStart := infStart
		for i := 0; i < k; i++ {
			if pos[i] < len(lists[i]) && lists[i][pos[i]].Region.Start < minStart {
				qmin, minStart = i, lists[i][pos[i]].Region.Start
			}
		}
		if qmin < 0 {
			break
		}
		cur := lists[qmin][pos[qmin]]
		pos[qmin]++

		if qmin == 0 {
			stacks[0] = append(stacks[0], cur)
			continue
		}
		// Pop parent entries whose region closed before cur starts. Only the
		// top of the stack is examined, so a closed sibling can survive
		// beneath a still-open entry pushed after it ([b1(10-20), b2(30-40)]
		// when cur starts at 35) — the containment check below is therefore
		// mandatory, not an optimization: Start< alone would let that stale
		// sibling fake a match (visibly so on child edges, where the level
		// test rejects the open container but accepts the closed twin).
		ps := stacks[qmin-1]
		for len(ps) > 0 && ps[len(ps)-1].Region.End < cur.Region.Start {
			ps = ps[:len(ps)-1]
		}
		stacks[qmin-1] = ps
		matched := false
		for i := len(ps) - 1; i >= 0; i-- {
			// Contains is strict on Start, which also rejects the same-Start
			// twin of a q_{i-1}=q_i self-chain.
			if !ps[i].Region.Contains(cur.Region) {
				continue
			}
			if childEdge[qmin] && ps[i].Region.Level+1 != cur.Region.Level {
				continue
			}
			matched = true
			break
		}
		if !matched {
			continue // no root path through cur: drop it
		}
		if qmin == k-1 {
			// Leaf postings arrive in Start order and each is read once, so
			// out is distinct and in document order by construction.
			out = append(out, cur)
		} else {
			stacks[qmin] = append(stacks[qmin], cur)
		}
	}
	return out
}
