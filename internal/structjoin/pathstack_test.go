package structjoin

import (
	"fmt"
	"testing"

	"xqgo/internal/store"
	"xqgo/internal/workload"
	"xqgo/internal/xdm"
	"xqgo/internal/xmlparse"
)

func mustParse(t *testing.T, xml string) *store.Document {
	t.Helper()
	doc, err := xmlparse.ParseString(xml, xmlparse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// binaryChain is the reference semantics for PathMatchLeaf: the chain
// evaluated edge by edge as binary stack-tree joins, projecting distinct
// descendants between steps — exactly what the runtime's binary plan does.
func binaryChain(lists []List, childEdge []bool) List {
	cur := lists[0]
	for i := 1; i < len(lists); i++ {
		cur = DistinctDescendants(StackTreeDesc(cur, lists[i], childEdge[i]))
		if len(cur) == 0 {
			return nil
		}
	}
	return cur
}

func sameList(a, b List) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPathMatchLeafMatchesBinaryPlan: the holistic path join must return
// byte-identical leaf postings to the chained binary plan on every chain
// shape, including child edges and self-chains, across generated documents.
func TestPathMatchLeafMatchesBinaryPlan(t *testing.T) {
	chains := []struct {
		names []string
		child []bool // child[0] unused
	}{
		{[]string{"a", "b"}, []bool{false, false}},
		{[]string{"a", "b", "c"}, []bool{false, false, false}},
		{[]string{"a", "b", "c"}, []bool{false, false, true}},
		{[]string{"a", "b", "c"}, []bool{false, true, false}},
		{[]string{"a", "b", "c", "d"}, []bool{false, false, true, false}},
		// Self-chains: strict containment must reject the same node as its
		// own ancestor, and a//a/a mixes both edge kinds over one list.
		{[]string{"a", "a"}, []bool{false, false}},
		{[]string{"a", "a", "a"}, []bool{false, false, true}},
	}
	docs := []workload.DeepConfig{
		{Nodes: 2000, Seed: 1},
		{Nodes: 6000, MaxDepth: 30, Fanout: 2, Seed: 2},
		{Nodes: 6000, MaxDepth: 5, Fanout: 20, Seed: 3},
		{Nodes: 6000, Names: []string{"a", "a", "a", "b", "z"}, Seed: 4},
	}
	for di, cfg := range docs {
		idx := BuildIndex(workload.Deep(cfg))
		for _, ch := range chains {
			lists := make([]List, len(ch.names))
			for i, n := range ch.names {
				lists[i] = idx.Elements(xdm.LocalName(n))
			}
			want := binaryChain(lists, ch.child)
			got := PathMatchLeaf(lists, ch.child)
			if !sameList(got, want) {
				t.Errorf("doc %d chain %v child %v: twig %d postings != binary %d",
					di, ch.names, ch.child, len(got), len(want))
			}
		}
	}
}

// TestPathMatchLeafClosedSibling pins the stale-stack regression: a closed
// b sibling below a still-open deeper b must not satisfy a child edge for
// a c whose real parent is neither.
//
//	<root>
//	  <a>
//	    <b/>              b1: closed before c starts, at c's parent level
//	    <x><x><b>         b2: open, contains c, but two levels up
//	      <x><c/></x>
//	    </b></x></x>
//	  </a>
//	</root>
func TestPathMatchLeafClosedSibling(t *testing.T) {
	doc := mustParse(t, `<root><a><b/><x><x><b><x><c/></x></b></x></x></a></root>`)
	idx := BuildIndex(doc)
	lists := []List{
		idx.Elements(xdm.LocalName("a")),
		idx.Elements(xdm.LocalName("b")),
		idx.Elements(xdm.LocalName("c")),
	}
	if got := PathMatchLeaf(lists, []bool{false, false, true}); len(got) != 0 {
		t.Errorf("a//b/c matched %d leaves; c's parent is x, want 0", len(got))
	}
	if got := PathMatchLeaf(lists, []bool{false, false, false}); len(got) != 1 {
		t.Errorf("a//b//c matched %d leaves, want 1", len(got))
	}
}

func TestPathMatchLeafDegenerate(t *testing.T) {
	idx := BuildIndex(workload.Deep(workload.DeepConfig{Nodes: 500, Seed: 5}))
	a := idx.Elements(xdm.LocalName("a"))
	if got := PathMatchLeaf(nil, nil); got != nil {
		t.Errorf("empty chain: %v", got)
	}
	if got := PathMatchLeaf([]List{a}, []bool{false}); !sameList(got, a) {
		t.Error("single-step chain must copy the list through")
	}
	if got := PathMatchLeaf([]List{a, nil}, []bool{false, false}); len(got) != 0 {
		t.Errorf("empty leaf list: %d postings", len(got))
	}
	if got := PathMatchLeaf([]List{nil, a}, []bool{false, false}); len(got) != 0 {
		t.Errorf("empty root list: %d postings", len(got))
	}
}

func BenchmarkPathMatchLeafVsBinary(b *testing.B) {
	idx := BuildIndex(workload.Deep(workload.DeepConfig{
		Nodes: 60000, MaxDepth: 40, Fanout: 2, Seed: 3}))
	lists := []List{
		idx.Elements(xdm.LocalName("a")),
		idx.Elements(xdm.LocalName("b")),
		idx.Elements(xdm.LocalName("c")),
	}
	child := []bool{false, false, false}
	for _, algo := range []struct {
		name string
		fn   func() List
	}{
		{"twig", func() List { return PathMatchLeaf(lists, child) }},
		{"binary", func() List { return binaryChain(lists, child) }},
	} {
		b.Run(fmt.Sprintf("%s/a-b-c", algo.name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				algo.fn()
			}
		})
	}
}
