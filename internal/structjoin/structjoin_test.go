package structjoin

import (
	"testing"
	"testing/quick"

	"xqgo/internal/store"
	"xqgo/internal/workload"
	"xqgo/internal/xdm"
)

// buildTree constructs a small document with known a/b nesting:
//
//	<root>
//	  <a>            a1
//	    <b/>         b1
//	    <a>          a2
//	      <b/>       b2
//	    </a>
//	  </a>
//	  <b/>           b3 (not under any a)
//	  <a><c/></a>    a3
//	</root>
func buildTree(t testing.TB) *store.Document {
	t.Helper()
	b := store.NewBuilder(store.BuilderOptions{})
	b.StartDocument()
	b.StartElement(xdm.LocalName("root"))
	b.StartElement(xdm.LocalName("a")) // a1
	b.StartElement(xdm.LocalName("b")) // b1
	b.EndElement()
	b.StartElement(xdm.LocalName("a")) // a2
	b.StartElement(xdm.LocalName("b")) // b2
	b.EndElement()
	b.EndElement()
	b.EndElement()
	b.StartElement(xdm.LocalName("b")) // b3
	b.EndElement()
	b.StartElement(xdm.LocalName("a")) // a3
	b.StartElement(xdm.LocalName("c"))
	b.EndElement()
	b.EndElement()
	b.EndElement()
	doc, err := b.Done()
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestBuildIndex(t *testing.T) {
	doc := buildTree(t)
	idx := BuildIndex(doc)
	if got := len(idx.Elements(xdm.LocalName("a"))); got != 3 {
		t.Errorf("a postings = %d, want 3", got)
	}
	if got := len(idx.Elements(xdm.LocalName("b"))); got != 3 {
		t.Errorf("b postings = %d, want 3", got)
	}
	if got := idx.Elements(xdm.LocalName("nosuch")); got != nil {
		t.Errorf("missing name should be nil, got %v", got)
	}
	// Sorted by start.
	list := idx.Elements(xdm.LocalName("a"))
	for i := 1; i < len(list); i++ {
		if list[i-1].Region.Start >= list[i].Region.Start {
			t.Error("posting list not sorted")
		}
	}
}

func TestStackTreeDescCorrectness(t *testing.T) {
	doc := buildTree(t)
	idx := BuildIndex(doc)
	a := idx.Elements(xdm.LocalName("a"))
	b := idx.Elements(xdm.LocalName("b"))

	// Expected a//b pairs: (a1,b1), (a1,b2), (a2,b2) = 3.
	pairs := StackTreeDesc(a, b, false)
	if len(pairs) != 3 {
		t.Fatalf("ancestor pairs = %d, want 3", len(pairs))
	}
	for _, p := range pairs {
		if !p.Ancestor.Region.Contains(p.Descendant.Region) {
			t.Errorf("pair %v is not an ancestor relation", p)
		}
	}
	// Parent-only: (a1,b1), (a2,b2) = 2.
	ppairs := StackTreeDesc(a, b, true)
	if len(ppairs) != 2 {
		t.Errorf("parent pairs = %d, want 2", len(ppairs))
	}
	for _, p := range ppairs {
		if !p.Ancestor.Region.ParentOf(p.Descendant.Region) {
			t.Errorf("pair %v is not a parent relation", p)
		}
	}
}

func TestAlgorithmsAgree(t *testing.T) {
	doc := buildTree(t)
	idx := BuildIndex(doc)
	a := idx.Elements(xdm.LocalName("a"))
	b := idx.Elements(xdm.LocalName("b"))
	for _, parentOnly := range []bool{false, true} {
		st := StackTreeDesc(a, b, parentOnly)
		tm := TreeMergeDesc(a, b, parentOnly)
		nav := NavigationDesc(doc, xdm.LocalName("a"), xdm.LocalName("b"), parentOnly)
		if len(st) != len(tm) || len(st) != len(nav) {
			t.Errorf("parentOnly=%v: stack=%d merge=%d nav=%d", parentOnly, len(st), len(tm), len(nav))
		}
	}
}

func TestDistinctProjections(t *testing.T) {
	doc := buildTree(t)
	idx := BuildIndex(doc)
	pairs := StackTreeDesc(idx.Elements(xdm.LocalName("a")), idx.Elements(xdm.LocalName("b")), false)
	descs := DistinctDescendants(pairs)
	if len(descs) != 2 { // b1, b2
		t.Errorf("distinct descendants = %d, want 2", len(descs))
	}
	ancs := DistinctAncestors(pairs)
	if len(ancs) != 2 { // a1, a2
		t.Errorf("distinct ancestors = %d, want 2", len(ancs))
	}
	for i := 1; i < len(ancs); i++ {
		if ancs[i-1].Region.Start >= ancs[i].Region.Start {
			t.Error("ancestors not in document order")
		}
	}
}

func TestParseTwig(t *testing.T) {
	cases := map[string]string{
		"a//b":       "a//b",
		"a/b":        "a/b",
		"a[b]//c":    "a[b]//c",
		"a[b//c]//d": "a[b//c]//d",
		"a[b][c]/d":  "a[b][c]/d",
	}
	for src, want := range cases {
		tw, err := ParseTwig(src)
		if err != nil {
			t.Errorf("ParseTwig(%q): %v", src, err)
			continue
		}
		if tw.String() != want {
			t.Errorf("ParseTwig(%q).String() = %q", src, tw.String())
		}
	}
	for _, bad := range []string{"", "a[", "a[b", "//", "a//"} {
		if _, err := ParseTwig(bad); err == nil {
			t.Errorf("ParseTwig(%q) should fail", bad)
		}
	}
	if !mustTwig(t, "a//b//c").IsLinear() {
		t.Error("a//b//c is linear")
	}
	if mustTwig(t, "a[b]//c").IsLinear() {
		t.Error("a[b]//c is not linear")
	}
}

func mustTwig(t testing.TB, s string) *TwigNode {
	t.Helper()
	tw, err := ParseTwig(s)
	if err != nil {
		t.Fatal(err)
	}
	return tw
}

func TestTwigStackLinearMatchesNavigation(t *testing.T) {
	doc := buildTree(t)
	idx := BuildIndex(doc)
	for _, pat := range []string{"a//b", "root//a", "a//a", "a/b", "root//a//b"} {
		tw := mustTwig(t, pat)
		stats := TwigStack(tw, idx)
		want := NavTwigCount(tw, doc)
		if stats.PathSolutions != want {
			t.Errorf("%s: TwigStack path solutions = %d, navigation count = %d",
				pat, stats.PathSolutions, want)
		}
	}
}

func TestTwigStackOnGeneratedData(t *testing.T) {
	doc := workload.Deep(workload.DeepConfig{Nodes: 3000, Seed: 7})
	idx := BuildIndex(doc)
	for _, pat := range []string{"a//b", "a//b//c", "b//a", "a/b", "root//d"} {
		tw := mustTwig(t, pat)
		stats := TwigStack(tw, idx)
		want := NavTwigCount(tw, doc)
		if stats.PathSolutions != want {
			t.Errorf("%s on deep data: holistic = %d, navigation = %d",
				pat, stats.PathSolutions, want)
		}
	}
	// Branching patterns: holistic intermediates never exceed the binary
	// plan's pairs (the E6 claim).
	for _, pat := range []string{"a[b]//c", "a[b//c]//d"} {
		tw := mustTwig(t, pat)
		stats := TwigStack(tw, idx)
		binary := BinaryPlanStats(tw, idx)
		if stats.PathSolutions > binary {
			t.Errorf("%s: holistic intermediates %d > binary pairs %d",
				pat, stats.PathSolutions, binary)
		}
	}
}

// Property: on random trees, StackTreeDesc agrees with the O(n^2)
// definition of the ancestor/descendant join.
func TestStackTreeQuick(t *testing.T) {
	f := func(seed int64) bool {
		doc := workload.Deep(workload.DeepConfig{Nodes: 300, Seed: seed})
		idx := BuildIndex(doc)
		a := idx.Elements(xdm.LocalName("a"))
		b := idx.Elements(xdm.LocalName("b"))
		got := StackTreeDesc(a, b, false)
		// brute force
		want := 0
		for _, anc := range a {
			for _, d := range b {
				if anc.Region.Contains(d.Region) {
					want++
				}
			}
		}
		return len(got) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPathStackAlias(t *testing.T) {
	doc := buildTree(t)
	idx := BuildIndex(doc)
	tw := mustTwig(t, "a//b")
	if PathStack(tw, idx).PathSolutions != TwigStack(mustTwig(t, "a//b"), idx).PathSolutions {
		t.Error("PathStack must agree with TwigStack on linear patterns")
	}
}
