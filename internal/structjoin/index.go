// Package structjoin implements the structural-join machinery of the
// XML-database era the paper surveys ("Structural Joins: A Primitive for
// Efficient XML Query Pattern Matching", "Holistic twig joins"): an
// element/attribute name index over region labels, the stack-tree binary
// structural join, the naive tree-merge and navigation baselines, and the
// PathStack/TwigStack holistic twig joins. All algorithms work on the
// store's (start, end, level) region labels (see internal/labeling), so
// ancestor/descendant tests are integer comparisons.
package structjoin

import (
	"sort"

	"xqgo/internal/labeling"
	"xqgo/internal/store"
	"xqgo/internal/xdm"
)

// Posting is one labeled node in an index list.
type Posting struct {
	Region labeling.Region
	ID     int32
}

// List is a name's posting list, sorted by document order (Start).
type List []Posting

// Index maps element/attribute names to posting lists for one document —
// the access path structural joins assume ("do NOT assume the data is
// pre-materialized" is the navigation engine's job; the index is the
// join engine's).
type Index struct {
	Doc      *store.Document
	elements map[string]List
	attrs    map[string]List
}

// BuildIndex scans a document once and builds posting lists for every
// element and attribute name.
func BuildIndex(d *store.Document) *Index {
	idx := &Index{
		Doc:      d,
		elements: make(map[string]List),
		attrs:    make(map[string]List),
	}
	for id := int32(0); id < int32(d.NumNodes()); id++ {
		switch d.Kind(id) {
		case xdm.ElementNode:
			key := d.NameOf(id).Clark()
			idx.elements[key] = append(idx.elements[key], Posting{Region: d.Region(id), ID: id})
		case xdm.AttributeNode:
			key := d.NameOf(id).Clark()
			idx.attrs[key] = append(idx.attrs[key], Posting{Region: d.Region(id), ID: id})
		}
	}
	// Pre-order scan yields document order already; keep the invariant
	// explicit for robustness.
	for _, l := range idx.elements {
		sortList(l)
	}
	for _, l := range idx.attrs {
		sortList(l)
	}
	return idx
}

func sortList(l List) {
	sort.Slice(l, func(i, j int) bool { return l[i].Region.Start < l[j].Region.Start })
}

// Elements returns the posting list for an element name (nil if absent).
func (x *Index) Elements(name xdm.QName) List { return x.elements[name.Clark()] }

// Attributes returns the posting list for an attribute name.
func (x *Index) Attributes(name xdm.QName) List { return x.attrs[name.Clark()] }

// ElementNames returns the distinct element names (diagnostics/tests).
func (x *Index) ElementNames() int { return len(x.elements) }

// Pair is one (ancestor, descendant) result of a binary structural join.
type Pair struct {
	Ancestor   Posting
	Descendant Posting
}
