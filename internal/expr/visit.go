package expr

// Walk calls fn for e and every descendant expression, pre-order. fn
// returning false prunes the subtree.
func Walk(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	for _, c := range e.Children() {
		Walk(c, fn)
	}
}

// Rewrite applies fn bottom-up: children are rewritten first, then fn is
// applied to the (possibly reconstructed) node. fn returning nil keeps the
// node unchanged.
func Rewrite(e Expr, fn func(Expr) Expr) Expr {
	if e == nil {
		return nil
	}
	children := e.Children()
	if len(children) > 0 {
		newChildren := make([]Expr, len(children))
		changed := false
		for i, c := range children {
			newChildren[i] = Rewrite(c, fn)
			if newChildren[i] != c {
				changed = true
			}
		}
		if changed {
			e = e.WithChildren(newChildren)
		}
	}
	if r := fn(e); r != nil {
		return r
	}
	return e
}

// Count returns the number of expression nodes in the tree (a cheap size
// metric used in optimizer tests and cost heuristics).
func Count(e Expr) int {
	n := 0
	Walk(e, func(Expr) bool { n++; return true })
	return n
}
