package expr

import (
	"xqgo/internal/xdm"
	"xqgo/internal/xtypes"
)

// Static type inference ("Every Xquery expression has a static type"): a
// conservative bottom-up inference over sequence types. The result is an
// upper bound — every value the expression can produce matches the inferred
// type — which is exactly what the optimizer's type-based rewritings need
// (goal 3 of the paper's type-system slide: ensure statically that the
// result is of an expected type).

// TypeEnv maps variable names (Clark notation) to inferred types.
type TypeEnv map[string]xtypes.SequenceType

// Infer computes a static type for e under env. Unknown constructs infer
// item()* (always sound).
func Infer(e Expr, env TypeEnv) xtypes.SequenceType {
	switch n := e.(type) {
	case *Literal:
		return xtypes.AtomicOne(n.Val.T)

	case *VarRef:
		if t, ok := env[n.Name.Clark()]; ok {
			return t
		}
		return xtypes.AnyItems

	case *Seq:
		if len(n.Items) == 0 {
			return xtypes.Empty
		}
		out := Infer(n.Items[0], env)
		for _, item := range n.Items[1:] {
			out = concatTypes(out, Infer(item, env))
		}
		return out

	case *Range:
		return xtypes.AtomicStar(xdm.TInteger)

	case *Arith:
		lt := Infer(n.L, env)
		rt := Infer(n.R, env)
		t := numericResult(lt, rt)
		occ := xtypes.OccOne
		if mayBeEmpty(lt.Occ) || mayBeEmpty(rt.Occ) {
			occ = xtypes.OccOpt
		}
		return xtypes.SequenceType{Occ: occ, Item: t}

	case *Neg:
		inner := Infer(n.X, env)
		occ := xtypes.OccOne
		if mayBeEmpty(inner.Occ) {
			occ = xtypes.OccOpt
		}
		return xtypes.SequenceType{Occ: occ, Item: numericResult(inner, inner)}

	case *Compare:
		if n.Kind == CompGeneral {
			return xtypes.AtomicOne(xdm.TBoolean)
		}
		occ := xtypes.OccOpt // value comparisons propagate ()
		return xtypes.SequenceType{Occ: occ, Item: xtypes.ItemType{Kind: xtypes.KAtomic, Type: xdm.TBoolean}}

	case *NodeCompare:
		return xtypes.AtomicOpt(xdm.TBoolean)

	case *Logic, *Quantified, *InstanceOf:
		return xtypes.AtomicOne(xdm.TBoolean)

	case *If:
		return unionTypes(Infer(n.Then, env), Infer(n.Else, env))

	case *TryCatch:
		return unionTypes(Infer(n.Try, env), Infer(n.Catch, env))

	case *Cast:
		if n.Castable {
			return xtypes.AtomicOne(xdm.TBoolean)
		}
		occ := xtypes.OccOne
		if n.Optional {
			occ = xtypes.OccOpt
		}
		return xtypes.SequenceType{Occ: occ, Item: xtypes.ItemType{Kind: xtypes.KAtomic, Type: n.T}}

	case *Treat:
		return n.T

	case *Typeswitch:
		out := Infer(n.Default, env)
		for _, c := range n.Cases {
			out = unionTypes(out, Infer(c.Body, env))
		}
		return out

	case *Path:
		// Node results; a trailing named child/descendant step narrows the
		// element type.
		if s, ok := n.R.(*Step); ok {
			return stepType(s)
		}
		return xtypes.NodeStar

	case *Step:
		return stepType(n)

	case *Filter:
		inner := Infer(n.In, env)
		return xtypes.SequenceType{Occ: relaxToStar(inner.Occ), Item: inner.Item}

	case *Root, *ContextItem:
		return xtypes.SequenceType{Occ: xtypes.OccOne, Item: xtypes.ItemType{Kind: xtypes.KAnyItem}}

	case *Flwor:
		child := env.clone()
		for _, cl := range n.Clauses {
			inT := Infer(cl.In, child)
			if cl.Kind == ForClause {
				child[cl.Var.Clark()] = xtypes.SequenceType{Occ: xtypes.OccOne, Item: inT.Item}
				if !cl.PosVar.IsZero() {
					child[cl.PosVar.Clark()] = xtypes.AtomicOne(xdm.TInteger)
				}
			} else {
				child[cl.Var.Clark()] = inT
			}
		}
		for _, g := range n.Group {
			child[g.Var.Clark()] = xtypes.AnyItems
		}
		retT := Infer(n.Ret, child)
		return xtypes.SequenceType{Occ: relaxToStar(retT.Occ), Item: retT.Item}

	case *SetOp:
		return xtypes.NodeStar

	case *ElemConstructor:
		it := xtypes.ItemType{Kind: xtypes.KElement, AnyName: true}
		if n.NameExpr == nil {
			it = xtypes.ItemType{Kind: xtypes.KElement, Name: n.Name}
		}
		return xtypes.SequenceType{Occ: xtypes.OccOne, Item: it}

	case *AttrConstructor:
		it := xtypes.ItemType{Kind: xtypes.KAttribute, AnyName: true}
		if n.NameExpr == nil {
			it = xtypes.ItemType{Kind: xtypes.KAttribute, Name: n.Name}
		}
		return xtypes.SequenceType{Occ: xtypes.OccOne, Item: it}

	case *TextConstructor:
		return xtypes.SequenceType{Occ: xtypes.OccOne, Item: xtypes.ItemType{Kind: xtypes.KText}}

	case *CommentConstructor:
		return xtypes.SequenceType{Occ: xtypes.OccOne, Item: xtypes.ItemType{Kind: xtypes.KComment}}

	case *PIConstructor:
		return xtypes.SequenceType{Occ: xtypes.OccOne, Item: xtypes.ItemType{Kind: xtypes.KPI}}

	case *DocConstructor:
		return xtypes.SequenceType{Occ: xtypes.OccOne, Item: xtypes.ItemType{Kind: xtypes.KDocument}}

	case *Call:
		if t, ok := builtinReturnTypes[n.Name.Local]; ok && (n.Name.Space == "" ||
			n.Name.Space == "http://www.w3.org/2005/xpath-functions") {
			return t
		}
		return xtypes.AnyItems
	}
	return xtypes.AnyItems
}

func (env TypeEnv) clone() TypeEnv {
	out := make(TypeEnv, len(env)+4)
	for k, v := range env {
		out[k] = v
	}
	return out
}

// builtinReturnTypes covers the built-ins whose return types drive
// optimizations; everything else infers item()*.
var builtinReturnTypes = map[string]xtypes.SequenceType{
	"count":           xtypes.AtomicOne(xdm.TInteger),
	"string-length":   xtypes.AtomicOne(xdm.TInteger),
	"position":        xtypes.AtomicOne(xdm.TInteger),
	"last":            xtypes.AtomicOne(xdm.TInteger),
	"empty":           xtypes.AtomicOne(xdm.TBoolean),
	"exists":          xtypes.AtomicOne(xdm.TBoolean),
	"not":             xtypes.AtomicOne(xdm.TBoolean),
	"boolean":         xtypes.AtomicOne(xdm.TBoolean),
	"true":            xtypes.AtomicOne(xdm.TBoolean),
	"false":           xtypes.AtomicOne(xdm.TBoolean),
	"contains":        xtypes.AtomicOne(xdm.TBoolean),
	"starts-with":     xtypes.AtomicOne(xdm.TBoolean),
	"ends-with":       xtypes.AtomicOne(xdm.TBoolean),
	"deep-equal":      xtypes.AtomicOne(xdm.TBoolean),
	"string":          xtypes.AtomicOne(xdm.TString),
	"concat":          xtypes.AtomicOne(xdm.TString),
	"string-join":     xtypes.AtomicOne(xdm.TString),
	"normalize-space": xtypes.AtomicOne(xdm.TString),
	"upper-case":      xtypes.AtomicOne(xdm.TString),
	"lower-case":      xtypes.AtomicOne(xdm.TString),
	"substring":       xtypes.AtomicOne(xdm.TString),
	"name":            xtypes.AtomicOne(xdm.TString),
	"local-name":      xtypes.AtomicOne(xdm.TString),
	"number":          xtypes.AtomicOne(xdm.TDouble),
	"doc":             xtypes.SequenceType{Occ: xtypes.OccOpt, Item: xtypes.ItemType{Kind: xtypes.KDocument}},
	"document":        xtypes.SequenceType{Occ: xtypes.OccOpt, Item: xtypes.ItemType{Kind: xtypes.KDocument}},
	"distinct-values": xtypes.AtomicStar(xdm.TAnyAtomic),
	"data":            xtypes.AtomicStar(xdm.TAnyAtomic),
	"reverse":         xtypes.AnyItems,
	"subsequence":     xtypes.AnyItems,
}

// stepType maps a step's node test to an item type.
func stepType(s *Step) xtypes.SequenceType {
	it := xtypes.ItemType{Kind: xtypes.KAnyNode}
	switch s.Test.Kind {
	case xtypes.TestName:
		kind := xtypes.KElement
		if s.Axis == AxisAttribute {
			kind = xtypes.KAttribute
		}
		it = xtypes.ItemType{Kind: kind, Name: s.Test.Name,
			AnyName: s.Test.AnyName || s.Test.WildLocal || s.Test.WildSpace}
	case xtypes.TestElement:
		it = xtypes.ItemType{Kind: xtypes.KElement, Name: s.Test.Name, AnyName: s.Test.AnyName}
	case xtypes.TestAttribute:
		it = xtypes.ItemType{Kind: xtypes.KAttribute, Name: s.Test.Name, AnyName: s.Test.AnyName}
	case xtypes.TestText:
		it = xtypes.ItemType{Kind: xtypes.KText}
	case xtypes.TestComment:
		it = xtypes.ItemType{Kind: xtypes.KComment}
	case xtypes.TestPI:
		it = xtypes.ItemType{Kind: xtypes.KPI}
	case xtypes.TestDoc:
		it = xtypes.ItemType{Kind: xtypes.KDocument}
	}
	return xtypes.SequenceType{Occ: xtypes.OccStar, Item: it}
}

// concatTypes types the comma operator.
func concatTypes(a, b xtypes.SequenceType) xtypes.SequenceType {
	item := a.Item
	switch {
	case a.Occ == xtypes.OccEmpty:
		item = b.Item
	case b.Occ == xtypes.OccEmpty:
		item = a.Item
	case !sameItemType(a.Item, b.Item):
		item = xtypes.ItemType{Kind: xtypes.KAnyItem}
	}
	return xtypes.SequenceType{Occ: addOcc(a.Occ, b.Occ), Item: item}
}

// unionTypes types a branch join (if/typeswitch). An empty-sequence branch
// contributes no item type, only the possibility of emptiness.
func unionTypes(a, b xtypes.SequenceType) xtypes.SequenceType {
	item := a.Item
	switch {
	case a.Occ == xtypes.OccEmpty:
		item = b.Item
	case b.Occ == xtypes.OccEmpty:
		item = a.Item
	case !sameItemType(a.Item, b.Item):
		item = xtypes.ItemType{Kind: xtypes.KAnyItem}
	}
	return xtypes.SequenceType{Occ: maxOcc(a.Occ, b.Occ), Item: item}
}

func sameItemType(a, b xtypes.ItemType) bool {
	return a.Kind == b.Kind && a.Type == b.Type && a.AnyName == b.AnyName && a.Name.Equal(b.Name)
}

func mayBeEmpty(o xtypes.Occurrence) bool {
	return o == xtypes.OccOpt || o == xtypes.OccStar || o == xtypes.OccEmpty
}

func relaxToStar(o xtypes.Occurrence) xtypes.Occurrence {
	switch o {
	case xtypes.OccEmpty:
		return xtypes.OccEmpty
	default:
		return xtypes.OccStar
	}
}

func addOcc(a, b xtypes.Occurrence) xtypes.Occurrence {
	lo := func(o xtypes.Occurrence) int {
		if o == xtypes.OccOne || o == xtypes.OccPlus {
			return 1
		}
		return 0
	}
	hi := func(o xtypes.Occurrence) int {
		switch o {
		case xtypes.OccEmpty:
			return 0
		case xtypes.OccOne, xtypes.OccOpt:
			return 1
		default:
			return 2 // many
		}
	}
	l, h := lo(a)+lo(b), hi(a)+hi(b)
	switch {
	case h == 0:
		return xtypes.OccEmpty
	case l == 0 && h == 1:
		return xtypes.OccOpt
	case l == 1 && h == 1:
		return xtypes.OccOne
	case l >= 1:
		return xtypes.OccPlus
	default:
		return xtypes.OccStar
	}
}

// maxOcc is the union of two occurrence ranges: the tightest indicator
// admitting every count either side admits.
func maxOcc(a, b xtypes.Occurrence) xtypes.Occurrence {
	bounds := func(o xtypes.Occurrence) (lo, hi int) {
		switch o {
		case xtypes.OccEmpty:
			return 0, 0
		case xtypes.OccOne:
			return 1, 1
		case xtypes.OccOpt:
			return 0, 1
		case xtypes.OccPlus:
			return 1, 2 // 2 = many
		default:
			return 0, 2
		}
	}
	alo, ahi := bounds(a)
	blo, bhi := bounds(b)
	lo, hi := alo, ahi
	if blo < lo {
		lo = blo
	}
	if bhi > hi {
		hi = bhi
	}
	switch {
	case hi == 0:
		return xtypes.OccEmpty
	case lo == 1 && hi == 1:
		return xtypes.OccOne
	case lo == 0 && hi == 1:
		return xtypes.OccOpt
	case lo == 1:
		return xtypes.OccPlus
	default:
		return xtypes.OccStar
	}
}

// numericResult gives the item type of an arithmetic result from its
// operand types: known numeric operand types promote; anything uncertain
// (untyped casts to double at run time) infers xs:anyAtomicType.
func numericResult(a, b xtypes.SequenceType) xtypes.ItemType {
	ta, tb := a.Item, b.Item
	if ta.Kind == xtypes.KAtomic && tb.Kind == xtypes.KAtomic &&
		ta.Type.IsNumeric() && tb.Type.IsNumeric() {
		return xtypes.ItemType{Kind: xtypes.KAtomic, Type: xdm.Promote(ta.Type, tb.Type)}
	}
	return xtypes.ItemType{Kind: xtypes.KAtomic, Type: xdm.TAnyAtomic}
}
