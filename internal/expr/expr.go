// Package expr defines the internal expression tree XQuery queries compile
// to — the paper's "expression tree (for optimization)" representation with
// an (almost) 1-1 mapping to surface expressions, plus the static analyses
// the optimizer consumes. Source positions are preserved on every node
// ("we preserve the lineage through all those representations").
package expr

import (
	"xqgo/internal/xdm"
	"xqgo/internal/xtypes"
)

// Pos is a source position (1-based).
type Pos struct {
	Line int
	Col  int
}

// Expr is an expression-tree node.
type Expr interface {
	// Span returns the source position of the expression.
	Span() Pos
	// Children returns the direct sub-expressions (shared slice must not be
	// mutated).
	Children() []Expr
	// WithChildren returns a copy of the node with the sub-expressions
	// replaced (same length/order as Children).
	WithChildren([]Expr) Expr
}

type Base struct{ P Pos }

func (b Base) Span() Pos { return b.P }

// ---- leaf expressions ----

// Literal is a constant atomic value.
type Literal struct {
	Base
	Val xdm.Atomic
}

// NewLiteral creates a literal at a position.
func NewLiteral(p Pos, v xdm.Atomic) *Literal { return &Literal{Base{p}, v} }

func (e *Literal) Children() []Expr         { return nil }
func (e *Literal) WithChildren([]Expr) Expr { c := *e; return &c }

// VarRef references a variable in scope ($x).
type VarRef struct {
	Base
	Name xdm.QName
}

func (e *VarRef) Children() []Expr         { return nil }
func (e *VarRef) WithChildren([]Expr) Expr { c := *e; return &c }

// ContextItem is ".".
type ContextItem struct{ Base }

func (e *ContextItem) Children() []Expr         { return nil }
func (e *ContextItem) WithChildren([]Expr) Expr { c := *e; return &c }

// Root is the leading "/" of an absolute path: the root of the context
// item's tree.
type Root struct{ Base }

func (e *Root) Children() []Expr         { return nil }
func (e *Root) WithChildren([]Expr) Expr { c := *e; return &c }

// ---- composition ----

// Seq is the comma operator: concatenation with flattening.
type Seq struct {
	Base
	Items []Expr
}

func (e *Seq) Children() []Expr { return e.Items }
func (e *Seq) WithChildren(c []Expr) Expr {
	n := *e
	n.Items = c
	return &n
}

// Range is "lo to hi".
type Range struct {
	Base
	Lo, Hi Expr
}

func (e *Range) Children() []Expr { return []Expr{e.Lo, e.Hi} }
func (e *Range) WithChildren(c []Expr) Expr {
	n := *e
	n.Lo, n.Hi = c[0], c[1]
	return &n
}

// ---- arithmetic / logic / comparison ----

// Arith is a binary arithmetic expression.
type Arith struct {
	Base
	Op   xdm.ArithOp
	L, R Expr
}

func (e *Arith) Children() []Expr { return []Expr{e.L, e.R} }
func (e *Arith) WithChildren(c []Expr) Expr {
	n := *e
	n.L, n.R = c[0], c[1]
	return &n
}

// Neg is unary minus (unary plus is dropped at parse).
type Neg struct {
	Base
	X Expr
}

func (e *Neg) Children() []Expr { return []Expr{e.X} }
func (e *Neg) WithChildren(c []Expr) Expr {
	n := *e
	n.X = c[0]
	return &n
}

// CompKind distinguishes the three comparison families.
type CompKind uint8

const (
	CompValue   CompKind = iota // eq ne lt le gt ge
	CompGeneral                 // = != < <= > >=
)

// Compare is a value or general comparison.
type Compare struct {
	Base
	Kind CompKind
	Op   xdm.CompOp
	L, R Expr
}

func (e *Compare) Children() []Expr { return []Expr{e.L, e.R} }
func (e *Compare) WithChildren(c []Expr) Expr {
	n := *e
	n.L, n.R = c[0], c[1]
	return &n
}

// NodeCompOp is the operator of a node comparison.
type NodeCompOp uint8

const (
	NodeIs       NodeCompOp = iota // is
	NodePrecedes                   // <<
	NodeFollows                    // >>
)

// NodeCompare is a node identity/order comparison.
type NodeCompare struct {
	Base
	Op   NodeCompOp
	L, R Expr
}

func (e *NodeCompare) Children() []Expr { return []Expr{e.L, e.R} }
func (e *NodeCompare) WithChildren(c []Expr) Expr {
	n := *e
	n.L, n.R = c[0], c[1]
	return &n
}

// Logic is "and"/"or" (And true); two-valued, short-circuiting,
// non-deterministic per the paper.
type Logic struct {
	Base
	And  bool
	L, R Expr
}

func (e *Logic) Children() []Expr { return []Expr{e.L, e.R} }
func (e *Logic) WithChildren(c []Expr) Expr {
	n := *e
	n.L, n.R = c[0], c[1]
	return &n
}

// ---- paths ----

// Axis enumerates the supported axes.
type Axis uint8

const (
	AxisChild Axis = iota
	AxisDescendant
	AxisDescendantOrSelf
	AxisSelf
	AxisAttribute
	AxisParent
	AxisAncestor
	AxisAncestorOrSelf
	AxisFollowingSibling
	AxisPrecedingSibling
)

var axisNames = [...]string{
	"child", "descendant", "descendant-or-self", "self", "attribute",
	"parent", "ancestor", "ancestor-or-self", "following-sibling",
	"preceding-sibling",
}

func (a Axis) String() string { return axisNames[a] }

// Reverse reports whether the axis is a reverse axis (results delivered in
// reverse document order before the path-level reordering).
func (a Axis) Reverse() bool {
	switch a {
	case AxisParent, AxisAncestor, AxisAncestorOrSelf, AxisPrecedingSibling:
		return true
	}
	return false
}

// Principal returns the axis's principal node kind.
func (a Axis) Principal() xdm.NodeKind {
	if a == AxisAttribute {
		return xdm.AttributeNode
	}
	return xdm.ElementNode
}

// Step is one axis step, evaluated against the context item.
type Step struct {
	Base
	Axis Axis
	Test xtypes.NodeTest
}

func (e *Step) Children() []Expr         { return nil }
func (e *Step) WithChildren([]Expr) Expr { c := *e; return &c }

// Path is E1/E2: evaluate E1, bind "." to each resulting node, evaluate E2,
// concatenate, then (unless elided by analysis) sort by document order and
// remove duplicates.
type Path struct {
	Base
	L, R Expr
	// NoReorder is set by the optimizer when the result is statically known
	// to be in document order and duplicate-free (experiment E8).
	NoReorder bool
}

func (e *Path) Children() []Expr { return []Expr{e.L, e.R} }
func (e *Path) WithChildren(c []Expr) Expr {
	n := *e
	n.L, n.R = c[0], c[1]
	return &n
}

// Filter is E[pred...]: positional or boolean predicates.
type Filter struct {
	Base
	In    Expr
	Preds []Expr
}

func (e *Filter) Children() []Expr {
	out := make([]Expr, 0, 1+len(e.Preds))
	out = append(out, e.In)
	return append(out, e.Preds...)
}

func (e *Filter) WithChildren(c []Expr) Expr {
	n := *e
	n.In = c[0]
	n.Preds = c[1:]
	return &n
}

// ---- FLWOR and binding forms ----

// ClauseKind distinguishes for/let clauses.
type ClauseKind uint8

const (
	ForClause ClauseKind = iota
	LetClause
)

// Clause is one for/let clause of a FLWOR.
type Clause struct {
	Kind   ClauseKind
	Var    xdm.QName
	PosVar xdm.QName // "at $i" for for-clauses; zero if absent
	Type   *xtypes.SequenceType
	In     Expr
}

// OrderSpec is one order-by key.
type OrderSpec struct {
	Key        Expr
	Descending bool
	EmptyLeast bool
}

// GroupSpec is one "group by $var := key" specification — the grouping
// extension the paper lists under "Missing functionalities" (and the
// "Grouping in XML" research line), with XQuery 3.0 surface syntax.
type GroupSpec struct {
	Var xdm.QName
	Key Expr
}

// Flwor is the full FLWOR expression. Where and OrderBy may be nil/empty;
// normalization rewrites Where into conditionals but the clause is kept in
// the tree so the optimizer can reason about it directly.
type Flwor struct {
	Base
	Clauses []Clause
	Where   Expr // nil if absent
	// Group, when non-empty, groups the binding tuples by the key values;
	// clause variables rebind to the concatenation of their group's values.
	Group  []GroupSpec
	Order  []OrderSpec
	Stable bool
	Ret    Expr
}

func (e *Flwor) Children() []Expr {
	var out []Expr
	for i := range e.Clauses {
		out = append(out, e.Clauses[i].In)
	}
	if e.Where != nil {
		out = append(out, e.Where)
	}
	for i := range e.Group {
		out = append(out, e.Group[i].Key)
	}
	for i := range e.Order {
		out = append(out, e.Order[i].Key)
	}
	out = append(out, e.Ret)
	return out
}

func (e *Flwor) WithChildren(c []Expr) Expr {
	n := *e
	n.Clauses = append([]Clause(nil), e.Clauses...)
	i := 0
	for j := range n.Clauses {
		n.Clauses[j].In = c[i]
		i++
	}
	if e.Where != nil {
		n.Where = c[i]
		i++
	}
	n.Group = append([]GroupSpec(nil), e.Group...)
	for j := range n.Group {
		n.Group[j].Key = c[i]
		i++
	}
	n.Order = append([]OrderSpec(nil), e.Order...)
	for j := range n.Order {
		n.Order[j].Key = c[i]
		i++
	}
	n.Ret = c[i]
	return &n
}

// TryCatch is "try { E } catch * { F }": the error-handling mechanism the
// paper lists as missing from XQuery 1.0 (XQuery 3.0 surface syntax,
// wildcard catch only). Errors raised while evaluating E — including
// lazily, so the try clause materializes — transfer control to F.
type TryCatch struct {
	Base
	Try   Expr
	Catch Expr
}

func (e *TryCatch) Children() []Expr { return []Expr{e.Try, e.Catch} }
func (e *TryCatch) WithChildren(c []Expr) Expr {
	n := *e
	n.Try, n.Catch = c[0], c[1]
	return &n
}

// QBind is one binding of a quantified expression.
type QBind struct {
	Var xdm.QName
	In  Expr
}

// Quantified is some/every ... satisfies.
type Quantified struct {
	Base
	Every     bool
	Binds     []QBind
	Satisfies Expr
}

func (e *Quantified) Children() []Expr {
	var out []Expr
	for i := range e.Binds {
		out = append(out, e.Binds[i].In)
	}
	return append(out, e.Satisfies)
}

func (e *Quantified) WithChildren(c []Expr) Expr {
	n := *e
	n.Binds = append([]QBind(nil), e.Binds...)
	for j := range n.Binds {
		n.Binds[j].In = c[j]
	}
	n.Satisfies = c[len(c)-1]
	return &n
}

// ---- conditionals and type operators ----

// If is if (cond) then ... else ....
type If struct {
	Base
	Cond, Then, Else Expr
}

func (e *If) Children() []Expr { return []Expr{e.Cond, e.Then, e.Else} }
func (e *If) WithChildren(c []Expr) Expr {
	n := *e
	n.Cond, n.Then, n.Else = c[0], c[1], c[2]
	return &n
}

// TSCase is one typeswitch case.
type TSCase struct {
	Type xtypes.SequenceType
	Var  xdm.QName // optional binding
	Body Expr
}

// Typeswitch branches on the dynamic type of its input.
type Typeswitch struct {
	Base
	Input      Expr
	Cases      []TSCase
	DefaultVar xdm.QName
	Default    Expr
}

func (e *Typeswitch) Children() []Expr {
	out := []Expr{e.Input}
	for i := range e.Cases {
		out = append(out, e.Cases[i].Body)
	}
	return append(out, e.Default)
}

func (e *Typeswitch) WithChildren(c []Expr) Expr {
	n := *e
	n.Input = c[0]
	n.Cases = append([]TSCase(nil), e.Cases...)
	for j := range n.Cases {
		n.Cases[j].Body = c[1+j]
	}
	n.Default = c[len(c)-1]
	return &n
}

// InstanceOf is "E instance of T".
type InstanceOf struct {
	Base
	X Expr
	T xtypes.SequenceType
}

func (e *InstanceOf) Children() []Expr { return []Expr{e.X} }
func (e *InstanceOf) WithChildren(c []Expr) Expr {
	n := *e
	n.X = c[0]
	return &n
}

// Cast is "E cast as T" (Castable true for "castable as").
type Cast struct {
	Base
	X        Expr
	T        xdm.TypeCode
	Optional bool // "?": allow the empty sequence
	Castable bool
}

func (e *Cast) Children() []Expr { return []Expr{e.X} }
func (e *Cast) WithChildren(c []Expr) Expr {
	n := *e
	n.X = c[0]
	return &n
}

// Treat is "E treat as T": a runtime-checked down-cast.
type Treat struct {
	Base
	X Expr
	T xtypes.SequenceType
}

func (e *Treat) Children() []Expr { return []Expr{e.X} }
func (e *Treat) WithChildren(c []Expr) Expr {
	n := *e
	n.X = c[0]
	return &n
}

// ---- set operations ----

// SetOp is union/intersect/except over node sequences.
type SetOpKind uint8

const (
	SetUnion SetOpKind = iota
	SetIntersect
	SetExcept
)

var setOpNames = [...]string{"union", "intersect", "except"}

func (k SetOpKind) String() string { return setOpNames[k] }

// SetOp combines two node sequences, deduplicating and restoring document
// order.
type SetOp struct {
	Base
	Op   SetOpKind
	L, R Expr
}

func (e *SetOp) Children() []Expr { return []Expr{e.L, e.R} }
func (e *SetOp) WithChildren(c []Expr) Expr {
	n := *e
	n.L, n.R = c[0], c[1]
	return &n
}

// ---- function calls ----

// Call is a function call, resolved during compilation against the built-in
// library or the query's declared functions.
type Call struct {
	Base
	Name xdm.QName
	Args []Expr
}

func (e *Call) Children() []Expr { return e.Args }
func (e *Call) WithChildren(c []Expr) Expr {
	n := *e
	n.Args = c
	return &n
}

// ---- constructors ----

// DirAttr is one attribute of a direct element constructor; its value is a
// concatenation of literal strings and enclosed expressions.
type DirAttr struct {
	Name  xdm.QName
	Parts []Expr // Literal strings and enclosed expressions
}

// ElemConstructor constructs an element. Direct constructors have a fixed
// Name; computed constructors evaluate NameExpr. Content expressions are
// evaluated and their results copied per the constructor rules. The paper
// flags node construction as THE side-effecting operation: each evaluation
// creates nodes with new identities, which restricts rewriting.
type ElemConstructor struct {
	Base
	Name     xdm.QName
	NameExpr Expr // nil for direct constructors
	Attrs    []DirAttr
	NS       []NSBinding
	Content  []Expr
	// NoNodeIDs is set by the optimizer when the constructed tree never
	// needs node identities (it is serialized immediately) — experiment E7.
	NoNodeIDs bool
}

// NSBinding is a literal namespace declaration on a direct constructor.
type NSBinding struct {
	Prefix string
	URI    string
}

func (e *ElemConstructor) Children() []Expr {
	var out []Expr
	if e.NameExpr != nil {
		out = append(out, e.NameExpr)
	}
	for i := range e.Attrs {
		out = append(out, e.Attrs[i].Parts...)
	}
	return append(out, e.Content...)
}

func (e *ElemConstructor) WithChildren(c []Expr) Expr {
	n := *e
	i := 0
	if e.NameExpr != nil {
		n.NameExpr = c[i]
		i++
	}
	n.Attrs = append([]DirAttr(nil), e.Attrs...)
	for j := range n.Attrs {
		parts := make([]Expr, len(n.Attrs[j].Parts))
		for k := range parts {
			parts[k] = c[i]
			i++
		}
		n.Attrs[j].Parts = parts
	}
	n.Content = c[i:]
	return &n
}

// AttrConstructor is a computed attribute constructor.
type AttrConstructor struct {
	Base
	Name     xdm.QName
	NameExpr Expr // nil if Name fixed
	Value    []Expr
}

func (e *AttrConstructor) Children() []Expr {
	var out []Expr
	if e.NameExpr != nil {
		out = append(out, e.NameExpr)
	}
	return append(out, e.Value...)
}

func (e *AttrConstructor) WithChildren(c []Expr) Expr {
	n := *e
	i := 0
	if e.NameExpr != nil {
		n.NameExpr = c[i]
		i++
	}
	n.Value = c[i:]
	return &n
}

// TextConstructor is text { E }.
type TextConstructor struct {
	Base
	X Expr
}

func (e *TextConstructor) Children() []Expr { return []Expr{e.X} }
func (e *TextConstructor) WithChildren(c []Expr) Expr {
	n := *e
	n.X = c[0]
	return &n
}

// CommentConstructor constructs a comment node.
type CommentConstructor struct {
	Base
	X Expr
}

func (e *CommentConstructor) Children() []Expr { return []Expr{e.X} }
func (e *CommentConstructor) WithChildren(c []Expr) Expr {
	n := *e
	n.X = c[0]
	return &n
}

// PIConstructor constructs a processing instruction.
type PIConstructor struct {
	Base
	Target string
	X      Expr
}

func (e *PIConstructor) Children() []Expr { return []Expr{e.X} }
func (e *PIConstructor) WithChildren(c []Expr) Expr {
	n := *e
	n.X = c[0]
	return &n
}

// DocConstructor is document { E }.
type DocConstructor struct {
	Base
	X Expr
}

func (e *DocConstructor) Children() []Expr { return []Expr{e.X} }
func (e *DocConstructor) WithChildren(c []Expr) Expr {
	n := *e
	n.X = c[0]
	return &n
}

// ---- query / prolog ----

// Param is a declared function parameter.
type Param struct {
	Name xdm.QName
	Type *xtypes.SequenceType
}

// FuncDecl is a user-declared function.
type FuncDecl struct {
	Name   xdm.QName
	Params []Param
	Ret    *xtypes.SequenceType
	Body   Expr
}

// VarDecl is a prolog variable: either External or with an initializer.
type VarDecl struct {
	Name     xdm.QName
	Type     *xtypes.SequenceType
	Init     Expr // nil if external
	External bool
}

// Query is a parsed query: prolog plus body.
type Query struct {
	// Namespaces declared in the prolog (prefix -> URI).
	Namespaces map[string]string
	// DefaultElemNS / DefaultFuncNS from the prolog.
	DefaultElemNS string
	DefaultFuncNS string
	Vars          []VarDecl
	Funcs         []FuncDecl
	Body          Expr
}
