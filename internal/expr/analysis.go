package expr

import "xqgo/internal/xdm"

// This file implements the dataflow analyses of the paper's "Xquery
// expression analysis" slide: variable usage (how often, inside a loop?),
// node creation, context sensitivity, error capability, and the
// ordered/distinct guarantees that let the optimizer elide document-order
// sorting and duplicate elimination.

// boundVars returns the variables an expression node binds for each child
// position. The result is indexed like Children(): bound[i] lists variables
// in scope for child i that the node itself introduces.
func boundVars(e Expr) [][]xdm.QName {
	switch n := e.(type) {
	case *Flwor:
		out := make([][]xdm.QName, 0, len(n.Children()))
		var inScope []xdm.QName
		for _, cl := range n.Clauses {
			out = append(out, append([]xdm.QName(nil), inScope...))
			inScope = append(inScope, cl.Var)
			if !cl.PosVar.IsZero() {
				inScope = append(inScope, cl.PosVar)
			}
		}
		if n.Where != nil {
			out = append(out, inScope)
		}
		for _, g := range n.Group {
			out = append(out, append([]xdm.QName(nil), inScope...))
			inScope = append(inScope, g.Var)
		}
		for range n.Order {
			out = append(out, inScope)
		}
		out = append(out, inScope) // return clause
		return out
	case *Quantified:
		out := make([][]xdm.QName, 0, len(n.Binds)+1)
		var inScope []xdm.QName
		for _, b := range n.Binds {
			out = append(out, append([]xdm.QName(nil), inScope...))
			inScope = append(inScope, b.Var)
		}
		out = append(out, inScope)
		return out
	case *Typeswitch:
		out := make([][]xdm.QName, 0, len(n.Cases)+2)
		out = append(out, nil) // input
		for _, c := range n.Cases {
			if !c.Var.IsZero() {
				out = append(out, []xdm.QName{c.Var})
			} else {
				out = append(out, nil)
			}
		}
		if !n.DefaultVar.IsZero() {
			out = append(out, []xdm.QName{n.DefaultVar})
		} else {
			out = append(out, nil)
		}
		return out
	}
	return nil
}

// FreeVars returns the free variables of e (keys in Clark notation).
func FreeVars(e Expr) map[string]bool {
	out := make(map[string]bool)
	collectFree(e, map[string]int{}, out)
	return out
}

func collectFree(e Expr, bound map[string]int, out map[string]bool) {
	if e == nil {
		return
	}
	if v, ok := e.(*VarRef); ok {
		if bound[v.Name.Clark()] == 0 {
			out[v.Name.Clark()] = true
		}
		return
	}
	children := e.Children()
	bv := boundVars(e)
	for i, c := range children {
		var added []string
		if bv != nil {
			for _, q := range bv[i] {
				k := q.Clark()
				bound[k]++
				added = append(added, k)
			}
		}
		collectFree(c, bound, out)
		for _, k := range added {
			bound[k]--
		}
	}
}

// UseInfo describes how an expression uses one variable.
type UseInfo struct {
	// Count is the number of syntactic references (loop bodies count once).
	Count int
	// InLoop reports whether some reference sits inside a for-clause body,
	// a quantifier body, or a recursive-capable function argument — i.e. the
	// variable's value may be demanded many times.
	InLoop bool
}

// UsesOf analyzes how e uses the variable named q. Shadowing is respected.
func UsesOf(e Expr, q xdm.QName) UseInfo {
	var info UseInfo
	usesOf(e, q.Clark(), false, 0, &info)
	return info
}

func usesOf(e Expr, key string, inLoop bool, shadow int, info *UseInfo) {
	if e == nil {
		return
	}
	if v, ok := e.(*VarRef); ok {
		if shadow == 0 && v.Name.Clark() == key {
			info.Count++
			if inLoop {
				info.InLoop = true
			}
		}
		return
	}
	children := e.Children()
	bv := boundVars(e)
	loopChild := loopChildren(e)
	for i, c := range children {
		add := 0
		if bv != nil {
			for _, q := range bv[i] {
				if q.Clark() == key {
					add++
				}
			}
		}
		childLoop := inLoop || (loopChild != nil && loopChild[i])
		usesOf(c, key, childLoop, shadow+add, info)
	}
}

// loopChildren marks which child positions are evaluated once per binding
// tuple ("part of a loop").
func loopChildren(e Expr) []bool {
	switch n := e.(type) {
	case *Flwor:
		out := make([]bool, 0, 8)
		seenFor := false
		for _, cl := range n.Clauses {
			out = append(out, seenFor) // clause input runs per outer tuple
			if cl.Kind == ForClause {
				seenFor = true
			}
		}
		if n.Where != nil {
			out = append(out, seenFor)
		}
		for range n.Group {
			out = append(out, seenFor)
		}
		for range n.Order {
			out = append(out, seenFor)
		}
		out = append(out, seenFor)
		return out
	case *Quantified:
		out := make([]bool, 0, len(n.Binds)+1)
		seen := false
		for range n.Binds {
			out = append(out, seen)
			seen = true
		}
		out = append(out, true)
		return out
	case *Path:
		return []bool{false, true} // RHS runs once per LHS node
	case *Filter:
		out := make([]bool, 1+len(n.Preds))
		for i := 1; i < len(out); i++ {
			out[i] = true
		}
		return out
	}
	return nil
}

// CreatesNodes reports whether evaluating e can ever produce newly
// constructed nodes — the paper's key side-effect test gating LET folding
// and common-subexpression factorization. Function calls are conservatively
// assumed to construct unless the registry says otherwise; the optimizer
// passes a resolver for that.
func CreatesNodes(e Expr, callCreates func(*Call) bool) bool {
	found := false
	Walk(e, func(x Expr) bool {
		if found {
			return false
		}
		switch c := x.(type) {
		case *ElemConstructor, *AttrConstructor, *TextConstructor,
			*CommentConstructor, *PIConstructor, *DocConstructor:
			found = true
			return false
		case *Call:
			if callCreates == nil || callCreates(c) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// UsesContext reports whether e references the context item (".", a leading
// step, or a context-dependent function like fn:position) outside a nested
// scope that rebinds it. Conservative: any ContextItem/Root/Step below e
// that is not under a Path RHS or Filter predicate counts.
func UsesContext(e Expr) bool {
	switch n := e.(type) {
	case nil:
		return false
	case *ContextItem, *Root, *Step:
		return true
	case *Call:
		switch n.Name.Local {
		case "position", "last":
			return true
		}
	case *Path:
		return UsesContext(n.L) // RHS context comes from LHS
	case *Filter:
		return UsesContext(n.In)
	}
	for _, c := range e.Children() {
		if UsesContext(c) {
			return true
		}
	}
	return false
}

// CanRaiseError conservatively reports whether evaluating e can raise a
// dynamic error. Literals, variable references, constructors over safe
// content, and pure navigation cannot; arithmetic, casts, and most function
// calls can.
func CanRaiseError(e Expr) bool {
	can := false
	Walk(e, func(x Expr) bool {
		if can {
			return false
		}
		switch c := x.(type) {
		case *Arith, *Cast, *Treat, *Compare:
			can = true
			return false
		case *Call:
			if !safeCalls[c.Name.Local] {
				can = true
				return false
			}
		}
		return true
	})
	return can
}

// safeCalls lists built-ins that never raise dynamic errors on any input.
var safeCalls = map[string]bool{
	"true": true, "false": true, "count": true, "empty": true,
	"exists": true, "not": true, "string": true, "concat": true,
	"position": true, "last": true, "local-name": true, "name": true,
	"namespace-uri": true, "string-length": true, "normalize-space": true,
}

// OrderProps captures the paper's "guaranteed to return results in doc
// order / node-distinct" analysis.
type OrderProps struct {
	// Sorted: the result is a node sequence in document order.
	Sorted bool
	// Distinct: the result contains no duplicate nodes.
	Distinct bool
	// Disjoint: no result node is an ancestor of another. This is the
	// property that lets a descendant step stay sorted: descendants of
	// ancestor-disjoint nodes enumerate in document order, while
	// descendants of nested nodes interleave (the //a/b row of the
	// paper's table).
	Disjoint bool
}

// StepOrderProps computes order/distinctness guarantees for a Path whose
// input has the given properties and whose RHS is the given step, per the
// table in the paper:
//
//	$document/a/b/c — doc order, no duplicates (child steps preserve all)
//	$document/a//b  — doc order, no duplicates (descendants of disjoint
//	                  nodes; the result itself is no longer disjoint)
//	$document//a/b  — NOT guaranteed doc order, but duplicate-free
//	                  (children of nested nodes can interleave)
//	$document//a//b — nothing can be said
func StepOrderProps(in OrderProps, s *Step) OrderProps {
	if !in.Sorted || !in.Distinct {
		return OrderProps{}
	}
	switch s.Axis {
	case AxisSelf:
		return in
	case AxisChild, AxisAttribute:
		// Children of distinct nodes are distinct and mutually disjoint;
		// document order holds only for a disjoint input.
		return OrderProps{Sorted: in.Disjoint, Distinct: true, Disjoint: in.Disjoint}
	case AxisDescendant, AxisDescendantOrSelf:
		if in.Disjoint {
			return OrderProps{Sorted: true, Distinct: true, Disjoint: false}
		}
		return OrderProps{}
	case AxisParent, AxisAncestor, AxisAncestorOrSelf:
		// Different children share parents: duplicates possible.
		return OrderProps{}
	case AxisFollowingSibling, AxisPrecedingSibling:
		return OrderProps{}
	}
	return OrderProps{}
}

// Props computes the order guarantees of an expression. The resolver maps
// variables to known properties (e.g. a for-variable bound to a sorted
// path is a single node: disjoint trivially).
func Props(e Expr, varProps func(xdm.QName) OrderProps) OrderProps {
	switch n := e.(type) {
	case *Root:
		return OrderProps{Sorted: true, Distinct: true, Disjoint: true}
	case *ContextItem:
		// A single item: trivially sorted & distinct; assumed one tree.
		return OrderProps{Sorted: true, Distinct: true, Disjoint: true}
	case *VarRef:
		if varProps != nil {
			return varProps(n.Name)
		}
		return OrderProps{}
	case *Call:
		if n.Name.Local == "doc" || n.Name.Local == "document" {
			return OrderProps{Sorted: true, Distinct: true, Disjoint: true}
		}
		return OrderProps{}
	case *Path:
		in := Props(n.L, varProps)
		if s, ok := n.R.(*Step); ok {
			return StepOrderProps(in, s)
		}
		if f, ok := n.R.(*Filter); ok {
			if s, ok := f.In.(*Step); ok {
				p := StepOrderProps(in, s)
				p.Disjoint = false // filtering keeps order & distinctness
				return OrderProps{Sorted: p.Sorted, Distinct: p.Distinct}
			}
		}
		return OrderProps{}
	case *Filter:
		p := Props(n.In, varProps)
		return OrderProps{Sorted: p.Sorted, Distinct: p.Distinct}
	case *Step:
		// A bare step applies to one context item.
		return StepOrderProps(OrderProps{Sorted: true, Distinct: true, Disjoint: true}, n)
	}
	return OrderProps{}
}
