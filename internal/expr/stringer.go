package expr

import (
	"fmt"
	"strings"

	"xqgo/internal/xdm"
)

// String renders an expression back to (approximate) XQuery syntax. The
// rendering is for diagnostics and optimizer tests; it is not guaranteed to
// re-parse for every construct, but is stable.
func String(e Expr) string {
	var b strings.Builder
	render(&b, e)
	return b.String()
}

func render(b *strings.Builder, e Expr) {
	switch n := e.(type) {
	case nil:
		b.WriteString("()")
	case *Literal:
		if n.Val.T == xdm.TString {
			fmt.Fprintf(b, "%q", n.Val.S)
		} else {
			b.WriteString(n.Val.Lexical())
		}
	case *VarRef:
		b.WriteString("$" + n.Name.String())
	case *ContextItem:
		b.WriteString(".")
	case *Root:
		b.WriteString("fn:root(.)")
	case *Seq:
		b.WriteString("(")
		for i, it := range n.Items {
			if i > 0 {
				b.WriteString(", ")
			}
			render(b, it)
		}
		b.WriteString(")")
	case *Range:
		b.WriteString("(")
		render(b, n.Lo)
		b.WriteString(" to ")
		render(b, n.Hi)
		b.WriteString(")")
	case *Arith:
		b.WriteString("(")
		render(b, n.L)
		fmt.Fprintf(b, " %s ", n.Op)
		render(b, n.R)
		b.WriteString(")")
	case *Neg:
		b.WriteString("-")
		render(b, n.X)
	case *Compare:
		ops := [...]string{"=", "!=", "<", "<=", ">", ">="}
		b.WriteString("(")
		render(b, n.L)
		if n.Kind == CompValue {
			fmt.Fprintf(b, " %s ", n.Op)
		} else {
			fmt.Fprintf(b, " %s ", ops[n.Op])
		}
		render(b, n.R)
		b.WriteString(")")
	case *NodeCompare:
		ops := [...]string{"is", "<<", ">>"}
		b.WriteString("(")
		render(b, n.L)
		fmt.Fprintf(b, " %s ", ops[n.Op])
		render(b, n.R)
		b.WriteString(")")
	case *Logic:
		op := " or "
		if n.And {
			op = " and "
		}
		b.WriteString("(")
		render(b, n.L)
		b.WriteString(op)
		render(b, n.R)
		b.WriteString(")")
	case *Step:
		fmt.Fprintf(b, "%s::%s", n.Axis, n.Test)
	case *Path:
		render(b, n.L)
		b.WriteString("/")
		render(b, n.R)
	case *Filter:
		render(b, n.In)
		for _, p := range n.Preds {
			b.WriteString("[")
			render(b, p)
			b.WriteString("]")
		}
	case *Flwor:
		for _, cl := range n.Clauses {
			if cl.Kind == ForClause {
				fmt.Fprintf(b, "for $%s ", cl.Var)
				if !cl.PosVar.IsZero() {
					fmt.Fprintf(b, "at $%s ", cl.PosVar)
				}
				b.WriteString("in ")
			} else {
				fmt.Fprintf(b, "let $%s := ", cl.Var)
			}
			render(b, cl.In)
			b.WriteString(" ")
		}
		if n.Where != nil {
			b.WriteString("where ")
			render(b, n.Where)
			b.WriteString(" ")
		}
		if len(n.Group) > 0 {
			b.WriteString("group by ")
			for i, g := range n.Group {
				if i > 0 {
					b.WriteString(", ")
				}
				fmt.Fprintf(b, "$%s := ", g.Var)
				render(b, g.Key)
			}
			b.WriteString(" ")
		}
		if len(n.Order) > 0 {
			b.WriteString("order by ")
			for i, o := range n.Order {
				if i > 0 {
					b.WriteString(", ")
				}
				render(b, o.Key)
				if o.Descending {
					b.WriteString(" descending")
				}
			}
			b.WriteString(" ")
		}
		b.WriteString("return ")
		render(b, n.Ret)
	case *Quantified:
		if n.Every {
			b.WriteString("every ")
		} else {
			b.WriteString("some ")
		}
		for i, q := range n.Binds {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(b, "$%s in ", q.Var)
			render(b, q.In)
		}
		b.WriteString(" satisfies ")
		render(b, n.Satisfies)
	case *If:
		b.WriteString("if (")
		render(b, n.Cond)
		b.WriteString(") then ")
		render(b, n.Then)
		b.WriteString(" else ")
		render(b, n.Else)
	case *Typeswitch:
		b.WriteString("typeswitch (")
		render(b, n.Input)
		b.WriteString(")")
		for _, c := range n.Cases {
			fmt.Fprintf(b, " case %s return ", c.Type)
			render(b, c.Body)
		}
		b.WriteString(" default return ")
		render(b, n.Default)
	case *InstanceOf:
		b.WriteString("(")
		render(b, n.X)
		fmt.Fprintf(b, " instance of %s)", n.T)
	case *Cast:
		b.WriteString("(")
		render(b, n.X)
		kw := "cast"
		if n.Castable {
			kw = "castable"
		}
		opt := ""
		if n.Optional {
			opt = "?"
		}
		fmt.Fprintf(b, " %s as %s%s)", kw, n.T, opt)
	case *Treat:
		b.WriteString("(")
		render(b, n.X)
		fmt.Fprintf(b, " treat as %s)", n.T)
	case *SetOp:
		b.WriteString("(")
		render(b, n.L)
		fmt.Fprintf(b, " %s ", n.Op)
		render(b, n.R)
		b.WriteString(")")
	case *Call:
		b.WriteString(n.Name.String() + "(")
		for i, a := range n.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			render(b, a)
		}
		b.WriteString(")")
	case *ElemConstructor:
		if n.NameExpr != nil {
			b.WriteString("element {")
			render(b, n.NameExpr)
			b.WriteString("} {")
		} else {
			fmt.Fprintf(b, "element %s {", n.Name)
		}
		for i, c := range n.Content {
			if i > 0 {
				b.WriteString(", ")
			}
			render(b, c)
		}
		b.WriteString("}")
	case *AttrConstructor:
		if n.NameExpr != nil {
			b.WriteString("attribute {")
			render(b, n.NameExpr)
			b.WriteString("} {")
		} else {
			fmt.Fprintf(b, "attribute %s {", n.Name)
		}
		for i, c := range n.Value {
			if i > 0 {
				b.WriteString(", ")
			}
			render(b, c)
		}
		b.WriteString("}")
	case *TextConstructor:
		b.WriteString("text {")
		render(b, n.X)
		b.WriteString("}")
	case *CommentConstructor:
		b.WriteString("comment {")
		render(b, n.X)
		b.WriteString("}")
	case *PIConstructor:
		fmt.Fprintf(b, "processing-instruction %s {", n.Target)
		render(b, n.X)
		b.WriteString("}")
	case *DocConstructor:
		b.WriteString("document {")
		render(b, n.X)
		b.WriteString("}")
	case *TryCatch:
		b.WriteString("try {")
		render(b, n.Try)
		b.WriteString("} catch * {")
		render(b, n.Catch)
		b.WriteString("}")
	default:
		fmt.Fprintf(b, "«%T»", e)
	}
}
