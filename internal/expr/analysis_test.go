package expr

import (
	"sort"
	"strings"
	"testing"

	"xqgo/internal/xdm"
	"xqgo/internal/xtypes"
)

// Helpers to build small trees without the parser (avoiding a test-only
// import cycle).

func lit(i int64) Expr   { return NewLiteral(Pos{}, xdm.NewInteger(i)) }
func v(name string) Expr { return &VarRef{Name: xdm.LocalName(name)} }

func flworFor(varName string, in Expr, ret Expr) *Flwor {
	return &Flwor{
		Clauses: []Clause{{Kind: ForClause, Var: xdm.LocalName(varName), In: in}},
		Ret:     ret,
	}
}

func flworLet(varName string, in Expr, ret Expr) *Flwor {
	return &Flwor{
		Clauses: []Clause{{Kind: LetClause, Var: xdm.LocalName(varName), In: in}},
		Ret:     ret,
	}
}

func TestFreeVars(t *testing.T) {
	// for $x in $a return ($x, $b)
	e := flworFor("x", v("a"), &Seq{Items: []Expr{v("x"), v("b")}})
	free := FreeVars(e)
	var names []string
	for k := range free {
		names = append(names, k)
	}
	sort.Strings(names)
	if strings.Join(names, ",") != "a,b" {
		t.Errorf("free vars = %v, want a,b", names)
	}

	// Shadowing: let $x := $x return $x — the outer $x is free in the
	// binding, the body's $x is bound.
	e2 := flworLet("x", v("x"), v("x"))
	free2 := FreeVars(e2)
	if len(free2) != 1 || !free2["x"] {
		t.Errorf("shadowed free vars = %v", free2)
	}

	// Quantifier binding.
	q := &Quantified{
		Binds:     []QBind{{Var: xdm.LocalName("q"), In: v("src")}},
		Satisfies: &Compare{Kind: CompValue, Op: xdm.OpEq, L: v("q"), R: v("lim")},
	}
	free3 := FreeVars(q)
	if !free3["src"] || !free3["lim"] || free3["q"] {
		t.Errorf("quantifier free vars = %v", free3)
	}
}

func TestUsesOf(t *testing.T) {
	// let $y := ... return $y + $y  — two uses, no loop.
	body := &Arith{Op: xdm.OpAdd, L: v("y"), R: v("y")}
	u := UsesOf(body, xdm.LocalName("y"))
	if u.Count != 2 || u.InLoop {
		t.Errorf("uses = %+v, want {2 false}", u)
	}

	// for $i in $in return $y — $y used once but inside a loop body.
	loop := flworFor("i", v("in"), v("y"))
	u = UsesOf(loop, xdm.LocalName("y"))
	if u.Count != 1 || !u.InLoop {
		t.Errorf("loop uses = %+v, want {1 true}", u)
	}

	// The loop *input* is not inside the loop.
	u = UsesOf(loop, xdm.LocalName("in"))
	if u.Count != 1 || u.InLoop {
		t.Errorf("input uses = %+v, want {1 false}", u)
	}

	// Shadowed variable is not counted.
	sh := flworFor("y", v("outer"), v("y"))
	u = UsesOf(sh, xdm.LocalName("y"))
	if u.Count != 0 {
		t.Errorf("shadowed count = %d, want 0", u.Count)
	}

	// Path RHS counts as a loop position.
	p := &Path{L: v("nodes"), R: &Filter{In: &Step{Axis: AxisChild, Test: xtypes.NodeTest{AnyName: true}},
		Preds: []Expr{v("y")}}}
	u = UsesOf(p, xdm.LocalName("y"))
	if !u.InLoop {
		t.Error("predicate use should be in a loop")
	}
}

func TestCreatesNodes(t *testing.T) {
	if CreatesNodes(lit(1), nil) {
		t.Error("literal creates no nodes")
	}
	ctor := &ElemConstructor{Name: xdm.LocalName("a")}
	if !CreatesNodes(ctor, nil) {
		t.Error("constructor creates nodes")
	}
	if !CreatesNodes(flworFor("x", v("in"), ctor), nil) {
		t.Error("nested constructor creates nodes")
	}
	call := &Call{Name: xdm.QName{Local: "count"}}
	if !CreatesNodes(call, nil) {
		t.Error("unknown calls conservatively create nodes")
	}
	if CreatesNodes(call, func(*Call) bool { return false }) {
		t.Error("resolver can clear calls")
	}
}

func TestUsesContext(t *testing.T) {
	if !UsesContext(&ContextItem{}) || !UsesContext(&Root{}) {
		t.Error("context item / root use the context")
	}
	if UsesContext(lit(1)) || UsesContext(v("x")) {
		t.Error("literals and variables do not")
	}
	// $x/child::a does not use the *outer* context.
	p := &Path{L: v("x"), R: &Step{Axis: AxisChild}}
	if UsesContext(p) {
		t.Error("rooted path does not use the outer context")
	}
	// child::a alone does.
	if !UsesContext(&Step{Axis: AxisChild}) {
		t.Error("bare step uses the context")
	}
	if !UsesContext(&Call{Name: xdm.QName{Local: "position"}}) {
		t.Error("fn:position uses the context")
	}
}

func TestCanRaiseError(t *testing.T) {
	if CanRaiseError(lit(1)) || CanRaiseError(v("x")) {
		t.Error("pure leaves cannot raise")
	}
	if !CanRaiseError(&Arith{Op: xdm.OpDiv, L: lit(1), R: lit(0)}) {
		t.Error("arithmetic can raise")
	}
	if !CanRaiseError(&Cast{X: v("x"), T: xdm.TInteger}) {
		t.Error("casts can raise")
	}
	if CanRaiseError(&Call{Name: xdm.QName{Local: "count"}, Args: []Expr{v("x")}}) {
		t.Error("fn:count cannot raise")
	}
	if !CanRaiseError(&Call{Name: xdm.QName{Local: "doc"}, Args: []Expr{v("x")}}) {
		t.Error("fn:doc can raise")
	}
}

// TestStepOrderProps reproduces the paper's path-expression table:
//
//	$document/a/b/c  — doc order, no duplicates
//	$document/a//b   — doc order, no duplicates
//	$document//a/b   — NOT doc order guaranteed... (here: //a yields
//	                   possibly nested a's, so /b may interleave)
//	$document//a//b  — nothing guaranteed
func TestStepOrderProps(t *testing.T) {
	docProps := OrderProps{Sorted: true, Distinct: true, Disjoint: true}
	child := func(name string) *Step {
		return &Step{Axis: AxisChild, Test: xtypes.NodeTest{Name: xdm.LocalName(name)}}
	}
	dos := &Step{Axis: AxisDescendantOrSelf, Test: xtypes.NodeTest{Kind: xtypes.TestAnyKind}}

	// /a/b/c: child steps preserve everything.
	p := StepOrderProps(StepOrderProps(StepOrderProps(docProps, child("a")), child("b")), child("c"))
	if !p.Sorted || !p.Distinct {
		t.Errorf("/a/b/c props = %+v", p)
	}

	// /a//b: descendant from a single tree is sorted+distinct only when
	// the input is one subtree; /a yields multiple disjoint subtrees so
	// the descendant step from SingleTree=false loses guarantees — but
	// from the document root (/ then //) it holds.
	fromRoot := StepOrderProps(docProps, dos)
	if !fromRoot.Sorted || !fromRoot.Distinct {
		t.Errorf("/ // props = %+v", fromRoot)
	}

	// //a/b: child after unguaranteed descendant input keeps nothing.
	afterDesc := StepOrderProps(StepOrderProps(docProps, child("a")), dos)
	childAfter := StepOrderProps(afterDesc, child("b"))
	if childAfter.Sorted {
		t.Errorf("//a/b should not be guaranteed sorted here: %+v", childAfter)
	}

	// parent steps lose everything.
	par := StepOrderProps(docProps, &Step{Axis: AxisParent, Test: xtypes.NodeTest{Kind: xtypes.TestAnyKind}})
	if par.Sorted || par.Distinct {
		t.Errorf("parent props = %+v", par)
	}
}

func TestRewrite(t *testing.T) {
	// Replace every literal 1 with 2, bottom-up.
	e := &Arith{Op: xdm.OpAdd, L: lit(1), R: &Arith{Op: xdm.OpMul, L: lit(1), R: lit(3)}}
	out := Rewrite(e, func(x Expr) Expr {
		if l, ok := x.(*Literal); ok && l.Val.I == 1 {
			return lit(2)
		}
		return nil
	})
	if String(out) != "(2 + (2 * 3))" {
		t.Errorf("rewrite = %s", String(out))
	}
	// The original is untouched (persistent rewriting).
	if String(e) != "(1 + (1 * 3))" {
		t.Errorf("original mutated: %s", String(e))
	}
}

func TestCountAndWalk(t *testing.T) {
	e := &Seq{Items: []Expr{lit(1), &Arith{Op: xdm.OpAdd, L: lit(2), R: lit(3)}}}
	if Count(e) != 5 {
		t.Errorf("Count = %d, want 5", Count(e))
	}
	seen := 0
	Walk(e, func(x Expr) bool {
		seen++
		_, isArith := x.(*Arith)
		return !isArith // prune below arithmetic
	})
	if seen != 3 { // seq, lit, arith
		t.Errorf("pruned walk saw %d nodes, want 3", seen)
	}
}

func TestWithChildrenRoundTrip(t *testing.T) {
	// Every composite node must reconstruct identically via WithChildren.
	nodes := []Expr{
		&Seq{Items: []Expr{lit(1), lit(2)}},
		&Range{Lo: lit(1), Hi: lit(2)},
		&Arith{Op: xdm.OpAdd, L: lit(1), R: lit(2)},
		&Neg{X: lit(1)},
		&Compare{Kind: CompGeneral, Op: xdm.OpLt, L: lit(1), R: lit(2)},
		&NodeCompare{Op: NodeIs, L: v("a"), R: v("b")},
		&Logic{And: true, L: lit(1), R: lit(2)},
		&Path{L: v("x"), R: &Step{Axis: AxisChild}},
		&Filter{In: v("x"), Preds: []Expr{lit(1), lit(2)}},
		flworFor("x", v("in"), v("x")),
		&Flwor{
			Clauses: []Clause{
				{Kind: ForClause, Var: xdm.LocalName("a"), PosVar: xdm.LocalName("i"), In: v("s")},
				{Kind: LetClause, Var: xdm.LocalName("b"), In: v("a")},
			},
			Where: v("a"),
			Order: []OrderSpec{{Key: v("b")}},
			Ret:   v("b"),
		},
		&Quantified{Binds: []QBind{{Var: xdm.LocalName("q"), In: v("s")}}, Satisfies: lit(1)},
		&If{Cond: lit(1), Then: lit(2), Else: lit(3)},
		&Typeswitch{Input: v("x"), Cases: []TSCase{{Type: xtypes.AnyItems, Body: lit(1)}}, Default: lit(2)},
		&InstanceOf{X: v("x"), T: xtypes.AnyItems},
		&Cast{X: v("x"), T: xdm.TInteger},
		&Treat{X: v("x"), T: xtypes.AnyItems},
		&SetOp{Op: SetUnion, L: v("a"), R: v("b")},
		&Call{Name: xdm.QName{Local: "f"}, Args: []Expr{lit(1)}},
		&ElemConstructor{Name: xdm.LocalName("e"),
			Attrs:   []DirAttr{{Name: xdm.LocalName("a"), Parts: []Expr{lit(1)}}},
			Content: []Expr{lit(2)}},
		&AttrConstructor{Name: xdm.LocalName("a"), Value: []Expr{lit(1)}},
		&TextConstructor{X: lit(1)},
		&CommentConstructor{X: lit(1)},
		&PIConstructor{Target: "t", X: lit(1)},
		&DocConstructor{X: lit(1)},
	}
	for _, n := range nodes {
		rebuilt := n.WithChildren(n.Children())
		if String(rebuilt) != String(n) {
			t.Errorf("%T: WithChildren changed rendering:\n  %s\n  %s",
				n, String(n), String(rebuilt))
		}
		if len(rebuilt.Children()) != len(n.Children()) {
			t.Errorf("%T: child count changed", n)
		}
	}
}
