// Package xqgo is a streaming XQuery processor: a Go reproduction of the
// XQRL/BEA architecture described in "XML Query Processing" (ICDE 2004) —
// expression-tree compilation, a rewriting-rule optimizer, and a lazy
// pull-based iterator runtime over an array document store, plus the
// structural-join/labeling machinery of the same era (see DESIGN.md).
//
// Quick start:
//
//	doc, _ := xqgo.ParseString(`<bib><book year="1994"><title>TCP/IP</title></book></bib>`, "bib.xml")
//	q, _ := xqgo.Compile(`for $b in /bib/book where $b/@year = 1994 return $b/title`, nil)
//	out, _ := q.EvalString(xqgo.NewContext().WithContextNode(doc))
package xqgo

import (
	"context"
	"fmt"
	"io"
	"iter"
	"math"
	"sync"
	"time"

	"xqgo/internal/expr"
	"xqgo/internal/limits"
	"xqgo/internal/optimizer"
	"xqgo/internal/runtime"
	"xqgo/internal/serializer"
	"xqgo/internal/store"
	"xqgo/internal/streamexec"
	"xqgo/internal/structjoin"
	"xqgo/internal/xdm"
	"xqgo/internal/xmlparse"
	"xqgo/internal/xqparse"
)

// Re-exported data-model types: results are sequences of items, each a node
// or an atomic value.
type (
	// Item is one member of a result sequence.
	Item = xdm.Item
	// Sequence is a materialized result sequence.
	Sequence = xdm.Sequence
	// Node is the data-model node interface.
	Node = xdm.Node
	// Atomic is an atomic value with its dynamic type.
	Atomic = xdm.Atomic
)

// EngineKind selects the evaluation engine.
//
// Deprecated: raw engine toggling is a mechanism knob. Callers tuning how
// queries execute should express intent through Options.Strategy (or a
// per-execution Context.WithPlanHints) and leave the engine alone; Eager
// remains available as the differential-testing comparator.
type EngineKind int

const (
	// Streaming is the lazy pull-based iterator engine (the paper's
	// processor). Default.
	Streaming EngineKind = iota
	// Eager is the fully-materializing baseline engine used as the
	// comparator in the experiments.
	Eager
)

// Strategy is the join-strategy policy for join-eligible path chains
// (//a//b/c …): how the engine evaluates rooted descendant-axis chains over
// plain name tests. The zero value defers to the deprecated
// UseStructuralJoins knob and otherwise means StrategyAuto.
type Strategy = optimizer.Strategy

const (
	// StrategyAuto (the default) picks per branch and per document with the
	// cost model: store statistics (document size, tag selectivity, depth),
	// whether a structural index is already cached, and output cardinalities
	// observed on prior runs of the same plan.
	StrategyAuto = optimizer.StrategyAuto
	// ForceNavigation pins tree navigation (the index-free baseline).
	ForceNavigation = optimizer.StrategyNavigation
	// ForceBinaryJoin pins stack-tree binary structural joins.
	ForceBinaryJoin = optimizer.StrategyBinaryJoin
	// ForceTwig pins the holistic twig (PathStack) join.
	ForceTwig = optimizer.StrategyTwigJoin
)

// Options configure compilation.
type Options struct {
	// Engine selects streaming (default) or the eager baseline.
	//
	// Deprecated: see EngineKind. Use Strategy to steer execution.
	Engine EngineKind
	// NoOptimize disables the rewriting optimizer entirely.
	NoOptimize bool
	// DisableRules turns off individual optimizer rules by name (see
	// the optimizer rule constants re-exported below).
	DisableRules []string
	// Strategy selects how join-eligible path chains execute: StrategyAuto
	// (cost-based, the default) or one of the Force* escape hatches for
	// testing and measurement. A per-execution Context.WithPlanHints
	// overrides it.
	Strategy Strategy
	// UseStructuralJoins evaluates descendant-axis path chains (//a//b)
	// with stack-tree structural joins over a lazily built per-document
	// name index instead of navigation — the index-based processing mode.
	//
	// Deprecated: set Strategy to ForceBinaryJoin instead (this knob maps
	// to exactly that, and is ignored when Strategy is set). The default
	// behavior is now StrategyAuto, which uses structural and twig joins
	// whenever the cost model prices them below navigation.
	UseStructuralJoins bool
	// MemoizeFunctions caches calls to pure user functions within one
	// execution (intra-query memoization).
	MemoizeFunctions bool
	// Parallel evaluates independent heavy branches of comma sequences
	// concurrently (horizontal parallelization). Opt-in: error timing may
	// change (XQuery's non-determinism permits this).
	Parallel bool
	// DisableBatching turns off the vectorized batch pull fast path: every
	// materializing consumer in the plan moves one item per virtual call.
	// This is the item-at-a-time baseline used by the batched-vs-item
	// benchmark rows and differential tests; leave it off for production.
	DisableBatching bool
	// DisableProjection turns off static path projection for streaming
	// inputs (Context.WithStreamingInput): the whole input document is
	// materialized instead of only the subtrees the query's path set can
	// reach. Projection never affects results — this switch exists for
	// differential testing and measurement.
	DisableProjection bool
}

// Optimizer rule names for Options.DisableRules (experiment E10 ablations).
const (
	RuleConstFold   = optimizer.RuleConstFold
	RuleLetFold     = optimizer.RuleLetFold
	RuleFnInline    = optimizer.RuleFnInline
	RuleFlworUnnest = optimizer.RuleFlworUnnest
	RuleForMin      = optimizer.RuleForMin
	RuleCSE         = optimizer.RuleCSE
	RulePathOrder   = optimizer.RulePathOrder
	RuleTypeRewrite = optimizer.RuleTypeRewrite
	RuleParentElim  = optimizer.RuleParentElim
	RuleNoNodeIDs   = optimizer.RuleNoNodeIDs
)

// Query is a compiled, optimized, executable query.
//
// A Query is immutable after Compile and safe for concurrent use: any
// number of goroutines may call Eval, EvalString, Execute or Iterator on
// the same Query simultaneously (the service layer's plan cache relies on
// this). Per-execution state — function memoization, structural-join
// indexes, the stable current dateTime — lives on the Context, which is
// internally synchronized; a Context may also be shared across concurrent
// evaluations as long as it is not mutated (Bind, RegisterDocument, …)
// while a query runs on it.
type Query struct {
	prepared *runtime.Prepared
	plan     *expr.Query
	trace    *optimizer.Trace // rewrite trace; nil when NoOptimize
	ro       runtime.Options  // engine options, reused by the stream compiler

	// Lazily compiled streaming form (see Streamability / WithStreamMode).
	streamOnce sync.Once
	sprog      *streamexec.Program
}

// Compile parses, optimizes and compiles an XQuery source text.
func Compile(src string, opts *Options) (*Query, error) {
	if opts == nil {
		opts = &Options{}
	}
	q, err := xqparse.Parse(src)
	if err != nil {
		return nil, err
	}
	var trace *optimizer.Trace
	if !opts.NoOptimize {
		oo := optimizer.Options{}
		if len(opts.DisableRules) > 0 {
			oo = optimizer.Disable(opts.DisableRules...)
		}
		trace = optimizer.NewTrace()
		oo.Trace = trace
		q = optimizer.Optimize(q, oo)
	}
	ro := runtime.Options{
		Eager:            opts.Engine == Eager,
		Strategy:         opts.EffectiveStrategy(),
		MemoizeFunctions: opts.MemoizeFunctions,
		Parallel:         opts.Parallel,
		NoBatch:          opts.DisableBatching,
	}
	if !opts.DisableProjection {
		// Static path projection: the set of root-reachable paths the query
		// can touch, used to skip unreachable subtrees while stream-parsing.
		ro.Projection = optimizer.ExtractPaths(q)
	}
	prepared, err := runtime.Compile(q, ro)
	if err != nil {
		return nil, err
	}
	return &Query{prepared: prepared, plan: q, trace: trace, ro: ro}, nil
}

// MustCompile is Compile that panics on error (for tests and examples).
func MustCompile(src string, opts *Options) *Query {
	q, err := Compile(src, opts)
	if err != nil {
		panic(err)
	}
	return q
}

// EffectiveStrategy resolves the configured strategy policy: an explicit
// Strategy wins, the deprecated UseStructuralJoins knob maps to
// ForceBinaryJoin, and everything else defaults to StrategyAuto.
func (o Options) EffectiveStrategy() Strategy {
	if o.Strategy != optimizer.StrategyDefault {
		return o.Strategy
	}
	if o.UseStructuralJoins {
		return ForceBinaryJoin
	}
	return StrategyAuto
}

// Plan renders the optimized expression tree (diagnostics).
//
// Deprecated: Plan is the string form only; use PlanInfo for the
// structured operator tree (stable operator ids, per-branch join strategy,
// cardinality estimates). Plan returns PlanInfo().Text.
func (q *Query) Plan() string { return q.PlanInfo().Text }

// Profiling and explain support. A Profile is attached to a Context before
// execution and read afterwards; the rewrite trace is recorded at Compile
// time. See Query.NewProfile, Context.WithProfile and Query.RewriteTrace.
type (
	// Profile collects per-operator and engine-wide execution statistics
	// for executions it is attached to (see Context.WithProfile).
	Profile = runtime.Profile
	// ProfileReport is a snapshot of a Profile.
	ProfileReport = runtime.Report
	// OpProfile is one per-operator row of a ProfileReport.
	OpProfile = runtime.OpReport
	// EngineCounters are the execution-wide counters of a ProfileReport.
	EngineCounters = runtime.CounterReport
	// RewriteEvent is one recorded optimizer rule application.
	RewriteEvent = optimizer.TraceEvent
)

// NewProfile creates a wall-clock-timed profile for this query (explain
// mode: every instrumented operator pull is timed).
func (q *Query) NewProfile() *Profile { return q.prepared.NewProfile(true) }

// NewCountersProfile creates a counters-only profile: item counts and engine
// counters are collected but no per-pull timing, making it cheap enough for
// always-on accounting (the service layer's default).
func (q *Query) NewCountersProfile() *Profile { return q.prepared.NewProfile(false) }

// RewriteTrace returns the optimizer rule applications recorded while this
// query was compiled, in application order (nil when NoOptimize was set).
func (q *Query) RewriteTrace() []RewriteEvent { return q.trace.Events() }

// RuleFires returns per-rule fire counts from compilation (nil when nothing
// fired or NoOptimize was set).
func (q *Query) RuleFires() map[string]int { return q.trace.Fires() }

// Document is a parsed XML document.
type Document struct {
	doc *store.Document
}

// Root returns the document node.
func (d *Document) Root() Node { return d.doc.RootNode() }

// NumNodes returns the number of stored nodes.
func (d *Document) NumNodes() int { return d.doc.NumNodes() }

// Store exposes the underlying array store (advanced use: structural joins,
// token scans).
func (d *Document) Store() *store.Document { return d.doc }

// FromStore wraps an internal store document (used by the workload
// generators, tools and benchmarks).
func FromStore(d *store.Document) *Document { return &Document{doc: d} }

// ParseOptions configure document parsing.
type ParseOptions struct {
	// StripWhitespace drops whitespace-only text nodes.
	StripWhitespace bool
	// PoolText deduplicates repeated text values (dictionary pooling).
	PoolText bool
}

// Parse reads an XML document.
func Parse(r io.Reader, uri string) (*Document, error) {
	return ParseWith(r, uri, ParseOptions{})
}

// ParseWith reads an XML document with options.
func ParseWith(r io.Reader, uri string, po ParseOptions) (*Document, error) {
	doc, err := xmlparse.Parse(r, xmlparse.Options{
		URI:             uri,
		StripWhitespace: po.StripWhitespace,
		PoolText:        po.PoolText,
	})
	if err != nil {
		return nil, err
	}
	return &Document{doc: doc}, nil
}

// ParseString parses a document held in a string.
func ParseString(src, uri string) (*Document, error) {
	doc, err := xmlparse.ParseString(src, xmlparse.Options{URI: uri})
	if err != nil {
		return nil, err
	}
	return &Document{doc: doc}, nil
}

// MustParseString is ParseString that panics on error.
func MustParseString(src, uri string) *Document {
	d, err := ParseString(src, uri)
	if err != nil {
		panic(err)
	}
	return d
}

// Context is the dynamic evaluation context: external variables, available
// documents, the initial context item.
type Context struct {
	dyn  *runtime.Dynamic
	reg  *runtime.DocRegistry
	hook func() error // user hook from WithInterrupt, kept for ctx composition

	// Stream-mode state (see WithStreamMode): the raw reader behind
	// WithStreamingInput, kept here so the event-driven evaluator can own
	// the parse when the plan is streamable.
	streamMode bool
	streamR    io.Reader
	streamURI  string
}

// NewContext creates an empty context with an in-memory document registry
// (no filesystem access; use RegisterFile/AllowFilesystem for files).
func NewContext() *Context {
	reg := runtime.NewDocRegistry(false)
	return &Context{
		dyn: &runtime.Dynamic{Resolver: reg, Vars: map[string]xdm.Sequence{}},
		reg: reg,
	}
}

// AllowFilesystem lets fn:doc() read unregistered URIs from disk.
// Documents already added via RegisterDocument remain registered.
func (c *Context) AllowFilesystem() *Context {
	c.reg.AllowFilesystem(true)
	return c
}

// RegisterDocument makes a document available to fn:doc(uri)/document(uri).
func (c *Context) RegisterDocument(uri string, d *Document) *Context {
	c.reg.Register(uri, d.Root())
	return c
}

// RegisterCollection makes a sequence available to fn:collection(uri).
func (c *Context) RegisterCollection(uri string, seq Sequence) *Context {
	if c.dyn.Collections == nil {
		c.dyn.Collections = map[string]xdm.Sequence{}
	}
	c.dyn.Collections[uri] = seq
	return c
}

// WithContextNode sets the initial context item to the document root.
func (c *Context) WithContextNode(d *Document) *Context {
	c.dyn.ContextItem = d.Root()
	return c
}

// WithContextItem sets the initial context item.
func (c *Context) WithContextItem(it Item) *Context {
	c.dyn.ContextItem = it
	return c
}

// WithNow pins fn:current-dateTime() (for reproducible tests).
func (c *Context) WithNow(t time.Time) *Context {
	c.dyn.Now = t
	return c
}

// WithInterrupt installs a low-level cancellation hook polled periodically
// during evaluation (a step budget over the engine's iterator loops). When
// the hook returns a non-nil error, the execution aborts with it.
//
// Most callers should use the context-first entry points instead —
// EvalContext, ExecuteContext, IteratorContext — which wire a
// context.Context's cancellation into the same mechanism. WithInterrupt
// remains for cancellation sources that are not contexts (quotas, external
// kill switches); a hook installed here keeps running alongside a
// context-first execution's deadline.
func (c *Context) WithInterrupt(f func() error) *Context {
	c.hook = f
	c.dyn.Interrupt = f
	return c
}

// WithStreamingInput attaches a streaming XML input: the document is parsed
// incrementally while the query runs, pulled forward only as far as
// evaluation demands, with subtrees unreachable by the query's static path
// set skipped entirely (see Options.DisableProjection). The document
// becomes the initial context item when none is set, and resolves via
// fn:doc(uri) under the given URI.
//
// The reader is consumed by at most one execution; attach a fresh Context
// (and reader) per run. Parse errors in regions the query never visits may
// go unreported — the stream is only read, and only validated, on demand.
func (c *Context) WithStreamingInput(r io.Reader, uri string) *Context {
	c.dyn.Stream = runtime.NewStreamState(r, xmlparse.Options{URI: uri})
	c.streamR = r
	c.streamURI = uri
	return c
}

// bindContext routes ctx cancellation into the engine's interrupt hook,
// composing with any WithInterrupt hook. A pending streamed-input read is
// also unblocked on cancellation — without that, an execution stalled on a
// slow producer would ignore its deadline until the next byte arrived. No-op
// for contexts that can never be canceled (context.Background() and
// friends).
func (c *Context) bindContext(ctx context.Context) {
	if ctx == nil || ctx.Done() == nil {
		return
	}
	hook := c.hook
	c.dyn.Interrupt = func() error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if hook != nil {
			return hook()
		}
		return nil
	}
	c.dyn.Stream.BindContext(ctx)
}

// MemoryBudget tracks one execution's bytes against a per-query cap; see
// Context.WithMemoryBudget. Obtain standalone instances with
// NewMemoryBudget, or governed ones from a MemoryGovernor.
type MemoryBudget = limits.Budget

// MemoryGovernor is a process-wide ledger of tracked bytes across many
// budgeted executions, with a soft cap for admission control. The service
// layer holds one per daemon.
type MemoryGovernor = limits.Governor

// BudgetExceededError is the structured error a memory-budget overage
// surfaces as (code XQGO0001). Detect it with errors.As.
type BudgetExceededError = limits.BudgetError

// NewMemoryBudget creates a standalone per-execution memory budget of
// maxBytes (0 = track without enforcing).
func NewMemoryBudget(maxBytes int64) *MemoryBudget {
	return limits.NewBudget(maxBytes, nil)
}

// NewMemoryGovernor creates a governor with a process soft cap in bytes
// (0 = unlimited). Budgets created with Governed charge against it.
func NewMemoryGovernor(softLimitBytes int64) *MemoryGovernor {
	return limits.NewGovernor(softLimitBytes)
}

// WithMemoryBudget caps the tracked bytes executions under this context may
// hold: store growth during lazy materialization, batch buffer pools, FLWOR
// gather rounds, and streaming window buffers all charge the budget, and
// overage aborts the query with a structured XQGO0001 error instead of
// letting it OOM the process. maxBytes <= 0 removes the cap. The accounting
// is an estimate of retained engine allocations, not process RSS.
func (c *Context) WithMemoryBudget(maxBytes int64) *Context {
	if maxBytes <= 0 {
		c.dyn.Budget = nil
		return c
	}
	c.dyn.Budget = limits.NewBudget(maxBytes, nil)
	return c
}

// WithBudget attaches an externally created budget (possibly charging a
// shared MemoryGovernor) to this context. Pass nil to detach. A budget
// belongs to one execution: release it (ReleaseAll) when the run finishes.
func (c *Context) WithBudget(b *MemoryBudget) *Context {
	c.dyn.Budget = b
	return c
}

// Budget returns the attached memory budget, nil when none is set.
func (c *Context) Budget() *MemoryBudget { return c.dyn.Budget }

// WithProfile attaches a profile to this context: subsequent executions
// update its counters. The profile must come from the same Query's
// NewProfile/NewCountersProfile (operator ids are plan-specific). Pass nil
// to detach.
func (c *Context) WithProfile(p *Profile) *Context {
	c.dyn.Prof = p
	return c
}

// WorkerLimiter arbitrates extra intra-query (morsel) workers against a
// shared slot pool; see Context.WithWorkers. TryLease grants between 0 and
// n extra workers without blocking, Release returns them. Implementations
// must be safe for concurrent use.
type WorkerLimiter = runtime.WorkerLimiter

// WithWorkers sets the morsel-parallelism target for executions under this
// context: up to n workers — including the pulling goroutine — cooperate on
// large path-step scans, structural joins, and FLWOR for/where tuple
// pipelines, with results stitched back in document order. n <= 1 (the
// default) keeps execution fully sequential. Workers beyond the first are
// leased round by round from the limiter (WithWorkerLimiter; a process-wide
// GOMAXPROCS pool by default) and are best-effort: a query always makes
// progress on its own goroutine — the guaranteed minimum of one — and
// simply runs sequentially when no slots are idle. Results and their order
// are identical to sequential execution; like Options.Parallel, errors may
// surface from bindings a fully lazy evaluation would have skipped.
func (c *Context) WithWorkers(n int) *Context {
	c.dyn.Workers = n
	return c
}

// WithWorkerLimiter installs the slot source extra morsel workers are
// leased from; nil restores the default process-wide pool. The service
// layer passes its admission executor here, so a heavy query soaks up idle
// request slots without ever starving the service queue.
func (c *Context) WithWorkerLimiter(l WorkerLimiter) *Context {
	c.dyn.Limiter = l
	return c
}

// PlanHints are per-execution overrides of compiled plan policy; see
// Context.WithPlanHints.
type PlanHints struct {
	// Strategy, when not zero, overrides the plan's Options.Strategy for
	// executions under this context: StrategyAuto re-enables cost-based
	// selection, the Force* values pin one execution strategy.
	Strategy Strategy
}

// WithPlanHints overrides plan policy for executions under this context —
// the request-scoped escape hatch over the compile-time Options.Strategy.
// The zero PlanHints removes any previous hint.
func (c *Context) WithPlanHints(h PlanHints) *Context {
	c.dyn.PlanHint = h.Strategy
	return c
}

// SeedIndex pre-populates the structural-join index cache for d with an
// already built index (see structjoin.BuildIndex), so executions that
// choose an index-based join strategy share one index instead of each
// building their own — and the cost model sees the index as free. The
// index must have been built from d's store document.
func (c *Context) SeedIndex(d *Document, idx *structjoin.Index) *Context {
	c.dyn.SeedIndex(d.doc, idx)
	return c
}

// Bind binds an external variable (declared "external" in the prolog). The
// value is converted from a Go value: string, bool, numeric types,
// time.Time, Node, Item, Sequence, or a slice of those (see ToSequence).
// Bind panics on unconvertible values, preserving the fluent chaining
// style; BindValue is the error-returning form.
func (c *Context) Bind(name string, value any) *Context {
	if err := c.BindValue(name, value); err != nil {
		panic(fmt.Sprintf("xqgo: Bind(%s): %v", name, err))
	}
	return c
}

// BindValue binds an external variable, returning an error instead of
// panicking when the Go value cannot be converted to an XDM sequence.
func (c *Context) BindValue(name string, value any) error {
	seq, err := ToSequence(value)
	if err != nil {
		return err
	}
	c.dyn.Vars[xdm.ParseClark(name).Clark()] = seq
	return nil
}

// ToSequence converts a Go value to an XDM sequence.
func ToSequence(value any) (Sequence, error) {
	switch v := value.(type) {
	case nil:
		return nil, nil
	case Sequence:
		return v, nil
	case Item:
		return Sequence{v}, nil
	case *Document:
		return Sequence{v.Root()}, nil
	case string:
		return Sequence{xdm.NewString(v)}, nil
	case bool:
		return Sequence{xdm.NewBoolean(v)}, nil
	case int:
		return Sequence{xdm.NewInteger(int64(v))}, nil
	case int32:
		return Sequence{xdm.NewInteger(int64(v))}, nil
	case int64:
		return Sequence{xdm.NewInteger(v)}, nil
	case uint:
		if uint64(v) > math.MaxInt64 {
			return nil, fmt.Errorf("uint value %d overflows xs:integer", v)
		}
		return Sequence{xdm.NewInteger(int64(v))}, nil
	case uint64:
		if v > math.MaxInt64 {
			return nil, fmt.Errorf("uint64 value %d overflows xs:integer", v)
		}
		return Sequence{xdm.NewInteger(int64(v))}, nil
	case float32:
		return Sequence{xdm.NewDouble(float64(v))}, nil
	case float64:
		return Sequence{xdm.NewDouble(v)}, nil
	case time.Time:
		return Sequence{xdm.NewDateTime(v, "")}, nil
	case []string:
		out := make(Sequence, len(v))
		for i, s := range v {
			out[i] = xdm.NewString(s)
		}
		return out, nil
	case []int:
		out := make(Sequence, len(v))
		for i, x := range v {
			out[i] = xdm.NewInteger(int64(x))
		}
		return out, nil
	case []int64:
		out := make(Sequence, len(v))
		for i, x := range v {
			out[i] = xdm.NewInteger(x)
		}
		return out, nil
	case []float64:
		out := make(Sequence, len(v))
		for i, x := range v {
			out[i] = xdm.NewDouble(x)
		}
		return out, nil
	case []bool:
		out := make(Sequence, len(v))
		for i, x := range v {
			out[i] = xdm.NewBoolean(x)
		}
		return out, nil
	case []Node:
		out := make(Sequence, len(v))
		for i, n := range v {
			out[i] = n
		}
		return out, nil
	case []Item:
		// Sequence is a defined type over []Item; a plain []Item (e.g. built
		// by generic code) lands here.
		return Sequence(v), nil
	case []any:
		var out Sequence
		for _, x := range v {
			s, err := ToSequence(x)
			if err != nil {
				return nil, err
			}
			out = append(out, s...)
		}
		return out, nil
	}
	return nil, fmt.Errorf("cannot convert %T to an XDM sequence", value)
}

// Eval executes the query, materializing the result.
func (q *Query) Eval(ctx *Context) (Sequence, error) {
	if ctx == nil {
		ctx = NewContext()
	}
	var seq Sequence
	err := q.traced(ctx, func() error {
		var err error
		seq, err = q.prepared.Eval(ctx.dyn)
		return err
	})
	return seq, err
}

// EvalContext is Eval under a context.Context: cancellation and deadline
// expiry of ctx abort the evaluation with ctx's error. The engine polls
// cancellation on its iterator loops, so even aggregates that never yield
// an item to the caller observe it promptly.
func (q *Query) EvalContext(ctx context.Context, c *Context) (Sequence, error) {
	if c == nil {
		c = NewContext()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c.bindContext(ctx)
	var seq Sequence
	err := q.traced(c, func() error {
		var err error
		seq, err = q.prepared.Eval(c.dyn)
		return err
	})
	return seq, err
}

// EvalString executes and serializes the result to XML text.
func (q *Query) EvalString(ctx *Context) (string, error) {
	seq, err := q.Eval(ctx)
	if err != nil {
		return "", err
	}
	return serializer.SequenceToString(seq)
}

// Execute streams the serialized result to w — the paper's minimal
// time-to-first-answer path: output is produced before the input is fully
// consumed, and node-id-free constructed trees are token-piped without
// materialization. With a streaming input attached (WithStreamingInput),
// input parsing and output production interleave: first bytes of output
// appear before the input reader reaches EOF.
func (q *Query) Execute(ctx *Context, w io.Writer) error {
	if ctx == nil {
		ctx = NewContext()
	}
	return q.traced(ctx, func() error {
		if ctx.streamMode {
			if handled, err := q.tryExecuteStream(ctx, w); handled {
				return err
			}
		}
		return q.prepared.ExecuteToWriter(ctx.dyn, w)
	})
}

// ExecuteContext is Execute under a context.Context (see EvalContext).
func (q *Query) ExecuteContext(ctx context.Context, c *Context, w io.Writer) error {
	if c == nil {
		c = NewContext()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	c.bindContext(ctx)
	return q.traced(c, func() error {
		if c.streamMode {
			if handled, err := q.tryExecuteStream(c, w); handled {
				return err
			}
		}
		return q.prepared.ExecuteToWriter(c.dyn, w)
	})
}

// Iterator returns a lazy result iterator; Next returns (item, ok, error).
// Call Close when done (also after an error or exhaustion — it is cheap and
// idempotent) to release pooled execution buffers early.
func (q *Query) Iterator(ctx *Context) (ResultIter, error) {
	if ctx == nil {
		ctx = NewContext()
	}
	it, err := q.prepared.RunIterator(ctx.dyn)
	if err != nil {
		return nil, err
	}
	return it, nil
}

// IteratorContext is Iterator under a context.Context (see EvalContext):
// ctx cancellation makes subsequent Next calls fail with ctx's error.
func (q *Query) IteratorContext(ctx context.Context, c *Context) (ResultIter, error) {
	if c == nil {
		c = NewContext()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c.bindContext(ctx)
	it, err := q.prepared.RunIterator(c.dyn)
	if err != nil {
		return nil, err
	}
	return it, nil
}

// Items returns the result as a Go range-over-func sequence:
//
//	for item, err := range q.Items(c) {
//		if err != nil { ... }
//	}
//
// Iteration is lazy (items are produced on demand, like Iterator) and the
// underlying iterator is closed when the loop ends, including via break.
// After a non-nil error the sequence ends.
func (q *Query) Items(c *Context) iter.Seq2[Item, error] {
	return func(yield func(Item, error) bool) {
		it, err := q.Iterator(c)
		if err != nil {
			yield(nil, err)
			return
		}
		defer it.Close()
		for {
			item, ok, err := it.Next()
			if err != nil {
				yield(nil, err)
				return
			}
			if !ok {
				return
			}
			if !yield(item, nil) {
				return
			}
		}
	}
}

// ResultIter is the pull interface over a query result. Next returns the
// next item with ok=false at exhaustion; Close releases pooled execution
// resources and is safe to call multiple times.
type ResultIter interface {
	Next() (Item, bool, error)
	Close()
}

// ItemString renders a single item as text (fn:string semantics for
// atomics, XML serialization for nodes).
func ItemString(it Item) (string, error) {
	if n, ok := it.(Node); ok {
		return serializer.NodeToString(n)
	}
	return it.(Atomic).Lexical(), nil
}
