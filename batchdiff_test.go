package xqgo_test

// Differential test for batched pull execution: every query of the paper
// suite (plus error-path and laziness edge cases) is evaluated through both
// pull paths — the vectorized NextBatch fast path (default) and the
// item-at-a-time baseline (DisableBatching) — asserting identical results
// and identical error codes. Run under -race in CI: the Parallel engine
// shares the batch buffer pool across goroutines.

import (
	"bytes"
	"testing"

	"xqgo"
	"xqgo/internal/xdm"
)

// batchDiffQueries is the differential suite: the paperqueries_test.go
// queries verbatim, plus cases aimed at the batched operators (deep paths,
// filters, FLWOR pipelines, ranges, set ops, grouping, order-by) and at
// error propagation through batch boundaries.
var batchDiffQueries = []string{
	// paperqueries_test.go suite.
	`for $x in document("bib.xml")/bib/book return $x/title`,
	`let $x := document("bib.xml")/bib/book return count($x)`,
	`for $x in //bib/book
	 let $y := $x/author
	 where $x/title = "Ulysses"
	 return count($y)`,
	`for $x in //bib/book
	 return (let $y := $x/author
	         return if ($x/title = "Ulysses") then count($y) else ())`,
	`for $b in document("bib.xml")//book
	 where $b/publisher = "Springer Verlag" and $b/@year = "1998"
	 return $b/title`,
	`count(//book[author/firstname = "ronald"])`,
	`count(//book[@price < 25])`,
	`count(//book[count(author[@gender="female"]) > 0])`,
	`count(/bib/book/author[1])`,
	`count((/bib/book/author)[1])`,
	`<a>42</a> eq "42"`,
	`<a>42</a> = 42`,
	`<a>42</a> = 42.0`,
	`<a>42</a> eq <b>42</b>`,
	`() = 42`,
	`(<a>42</a>, <b>43</b>) = 42`,
	`(1,2) = (2,3)`,
	`count(() eq 42)`,
	`let $x := <a/> return count(distinct-nodes(($x, $x)))`,
	`count(distinct-nodes((<a/>, <a/>)))`,
	`declare namespace ns = "uri1";
	 <b xmlns:ns="uri2">{ namespace-uri-from-QName(node-name(<ns:a/>)) }</b>`,
	`count(/bib/book/title/..)`,
	`count(/bib/book[title])`,
	`for $book in /bib/book
	 return if ($book/@year < 1980)
	        then <old>{$book/title/text()}</old>
	        else <new>{$book/title/text()}</new>`,
	`let $ttl := <x ttl="33000"/>
	 return <binding>{
	   if (empty($ttl/@ttl)) then ()
	   else attribute persist-duration { concat(($ttl/@ttl div 1000), " seconds") }
	 }</binding>`,
	`empty(())`,
	`index-of((10, 20, 30), 20)`,
	`distinct-values((1, 1, 2))`,
	`string-length("politics")`,
	`contains("experience", "peri")`,
	`string(date("2002-05-20"))`,
	`string(add-date(date("2002-05-20"), xdt:dayTimeDuration("P2D")))`,
	`let $x := <x/> let $y := <y/> let $z := <z/>
	 return for $n in (($x, $y) union ($y, $z)) return local-name($n)`,

	// Batched-operator edges: ranges, deep pipelines, grouping, order-by.
	`count(1 to 1000)`,
	`sum(1 to 300)`,
	`(1 to 400)[. mod 7 = 0]`,
	`count(for $i in 1 to 200 for $j in 1 to 3 where ($i + $j) mod 5 = 0 return $i * $j)`,
	`for $b in /bib/book order by string($b/title) return string($b/@year)`,
	`for $b in /bib/book order by number($b/price) descending return string($b/price)`,
	`for $a in //author group by $g := count($a/*) return $g`,
	`string-join(for $i in 1 to 150 return string($i mod 10), "")`,
	`count(//*)`,
	`count(//author/ancestor::book)`,
	`(for $x in 1 to 100 return $x * $x)[71]`,
	`some $x in 1 to 1000000000 satisfies $x = 3`,
	`every $x in 1 to 50 satisfies $x > 0`,
	`subsequence(1 to 100000, 5, 3)`,
	`let $s := (1 to 260) return (count($s), sum($s), $s[259])`,

	// Error propagation across batch boundaries: items before the error
	// must not change which error code surfaces.
	`(1, 2, 1 idiv 0)`,
	`(1, 1 idiv 0, 3)[1]`,
	`for $x in (1, 2, 0, 4) return 10 idiv $x`,
	`sum(for $x in 1 to 300 return if ($x = 299) then "boom" else $x)`,
	`count(for $x in 1 to 300 return 1 idiv (300 - $x))`,
	`/bib/book[1 idiv 0]`,
	`string(xs:yearMonthDuration("P1D"))`,
	`codepoints-to-string((65, 66, 0))`,
	`let $dead := 1 idiv 0 return "alive"`,
	`try { for $x in 1 to 300 return 1 idiv (150 - $x) } catch * { "caught" }`,
}

// batchDiffOptSets exercises the fast path under each engine variant that
// interacts with it (struct joins feed batches, Parallel shares the pool).
var batchDiffOptSets = []struct {
	name string
	opts xqgo.Options
}{
	{"default", xqgo.Options{}},
	{"structjoin", xqgo.Options{Strategy: xqgo.ForceBinaryJoin}},
	{"twig", xqgo.Options{Strategy: xqgo.ForceTwig}},
	{"parallel", xqgo.Options{Parallel: true}},
}

func errCode(err error) string {
	if err == nil {
		return ""
	}
	if e, ok := err.(*xdm.Error); ok {
		return e.Code
	}
	return "non-xdm:" + err.Error()
}

func TestBatchedVsItemDifferential(t *testing.T) {
	for _, os := range batchDiffOptSets {
		t.Run(os.name, func(t *testing.T) {
			for _, q := range batchDiffQueries {
				batchedOpts := os.opts
				itemOpts := os.opts
				itemOpts.DisableBatching = true

				qb, err := xqgo.Compile(q, &batchedOpts)
				if err != nil {
					t.Fatalf("compile (batched) %q: %v", q, err)
				}
				qi, err := xqgo.Compile(q, &itemOpts)
				if err != nil {
					t.Fatalf("compile (item) %q: %v", q, err)
				}

				// Materializing evaluation.
				ctxB, _ := paperCtx(t)
				ctxI, _ := paperCtx(t)
				outB, errB := qb.EvalString(ctxB)
				outI, errI := qi.EvalString(ctxI)
				if errCode(errB) != errCode(errI) {
					t.Errorf("%q: eval error mismatch: batched %v vs item %v", q, errB, errI)
					continue
				}
				if errB == nil && outB != outI {
					t.Errorf("%q: eval result mismatch:\n  batched: %q\n  item:    %q", q, outB, outI)
				}

				// Serializer sink (Execute drains batches directly).
				ctxB, _ = paperCtx(t)
				ctxI, _ = paperCtx(t)
				var bufB, bufI bytes.Buffer
				errB = qb.Execute(ctxB, &bufB)
				errI = qi.Execute(ctxI, &bufI)
				if errCode(errB) != errCode(errI) {
					t.Errorf("%q: execute error mismatch: batched %v vs item %v", q, errB, errI)
					continue
				}
				if errB == nil && bufB.String() != bufI.String() {
					t.Errorf("%q: execute output mismatch:\n  batched: %q\n  item:    %q",
						q, bufB.String(), bufI.String())
				}

				// Item-granularity pulls against the batch-capable plan:
				// mixing granularities must not skip or repeat items.
				ctxB, _ = paperCtx(t)
				it, err := qb.Iterator(ctxB)
				if err == nil {
					n := 0
					for {
						_, ok, ierr := it.Next()
						if ierr != nil || !ok {
							break
						}
						n++
					}
				}
			}
		})
	}
}
