package xqgo_test

import (
	"testing"

	"xqgo"
	"xqgo/internal/workload"
)

// TestIndexedPathEquivalence: join-shaped paths evaluated with structural
// joins must return exactly the navigation engine's results.
func TestIndexedPathEquivalence(t *testing.T) {
	doc := xqgo.FromStore(workload.Deep(workload.DeepConfig{Nodes: 3000, Seed: 9}))
	queries := []string{
		`//a//b`,
		`//a//b//c`,
		`//a/b`,
		`/root//a`,
		`/root//a/b//c`,
		`count(//a//b)`,
		`for $n in //a//b return local-name($n)`,
		// Not join-shaped (predicates, wildcards): must silently fall back.
		`//a[b]//c`,
		`//*`,
		`//a//b[1]`,
	}
	for _, q := range queries {
		nav := xqgo.MustCompile(q, &xqgo.Options{Strategy: xqgo.ForceNavigation})
		idx := xqgo.MustCompile(q, &xqgo.Options{Strategy: xqgo.ForceBinaryJoin})
		want, err := nav.EvalString(xqgo.NewContext().WithContextNode(doc))
		if err != nil {
			t.Fatalf("%s (nav): %v", q, err)
		}
		got, err := idx.EvalString(xqgo.NewContext().WithContextNode(doc))
		if err != nil {
			t.Fatalf("%s (indexed): %v", q, err)
		}
		if got != want {
			t.Errorf("%s: indexed %.120q != nav %.120q", q, got, want)
		}
	}
}

// TestDeprecatedJoinKnob: the retired UseStructuralJoins bool must keep
// working as an alias for ForceBinaryJoin until it is removed.
func TestDeprecatedJoinKnob(t *testing.T) {
	cases := []struct {
		name string
		opts xqgo.Options
		want xqgo.Strategy
	}{
		{"zero value is auto", xqgo.Options{}, xqgo.StrategyAuto},
		{"legacy bool maps to binary join", xqgo.Options{UseStructuralJoins: true}, xqgo.ForceBinaryJoin},
		{"explicit strategy wins over legacy bool",
			xqgo.Options{UseStructuralJoins: true, Strategy: xqgo.ForceNavigation}, xqgo.ForceNavigation},
	}
	for _, c := range cases {
		if got := c.opts.EffectiveStrategy(); got != c.want {
			t.Errorf("%s: EffectiveStrategy() = %v, want %v", c.name, got, c.want)
		}
	}

	// End to end: the legacy knob still forces the join engine.
	doc := xqgo.FromStore(workload.Deep(workload.DeepConfig{Nodes: 3000, Seed: 9}))
	legacy := xqgo.MustCompile(`count(//a//b)`, &xqgo.Options{UseStructuralJoins: true})
	nav := xqgo.MustCompile(`count(//a//b)`, &xqgo.Options{Strategy: xqgo.ForceNavigation})
	ctx := func() *xqgo.Context { return xqgo.NewContext().WithContextNode(doc) }
	want, err := nav.EvalString(ctx())
	if err != nil {
		t.Fatal(err)
	}
	got, err := legacy.EvalString(ctx())
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("legacy knob result %q != navigation %q", got, want)
	}
}
