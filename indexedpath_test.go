package xqgo_test

import (
	"testing"

	"xqgo"
	"xqgo/internal/workload"
)

// TestIndexedPathEquivalence: join-shaped paths evaluated with structural
// joins must return exactly the navigation engine's results.
func TestIndexedPathEquivalence(t *testing.T) {
	doc := xqgo.FromStore(workload.Deep(workload.DeepConfig{Nodes: 3000, Seed: 9}))
	queries := []string{
		`//a//b`,
		`//a//b//c`,
		`//a/b`,
		`/root//a`,
		`/root//a/b//c`,
		`count(//a//b)`,
		`for $n in //a//b return local-name($n)`,
		// Not join-shaped (predicates, wildcards): must silently fall back.
		`//a[b]//c`,
		`//*`,
		`//a//b[1]`,
	}
	for _, q := range queries {
		nav := xqgo.MustCompile(q, nil)
		idx := xqgo.MustCompile(q, &xqgo.Options{UseStructuralJoins: true})
		want, err := nav.EvalString(xqgo.NewContext().WithContextNode(doc))
		if err != nil {
			t.Fatalf("%s (nav): %v", q, err)
		}
		got, err := idx.EvalString(xqgo.NewContext().WithContextNode(doc))
		if err != nil {
			t.Fatalf("%s (indexed): %v", q, err)
		}
		if got != want {
			t.Errorf("%s: indexed %.120q != nav %.120q", q, got, want)
		}
	}
}
