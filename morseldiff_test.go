package xqgo_test

// Differential test for morsel-driven intra-query parallelism: every query
// of the batch differential suite — and a set of large-document queries
// that actually cross the morsel activation thresholds — is evaluated with
// worker parallelism off and on (Workers=8), under every engine variant,
// asserting identical results and identical error codes. Run in CI at
// GOMAXPROCS=8 under -race: workers share indexes, the call memo, and the
// resolver across goroutines.

import (
	"fmt"
	"testing"

	"xqgo"
	"xqgo/internal/workload"
)

// grantAll always grants the full worker request, so the differential runs
// real parallel rounds regardless of the host's CPU count (the default
// process pool grants nothing on a single-CPU machine).
type grantAll struct{}

func (grantAll) TryLease(n int) int { return n }
func (grantAll) Release(int)        {}

func TestMorselDifferentialPaperSuite(t *testing.T) {
	for _, os := range batchDiffOptSets {
		t.Run(os.name, func(t *testing.T) {
			for _, q := range batchDiffQueries {
				compiled, err := xqgo.Compile(q, &os.opts)
				if err != nil {
					t.Fatalf("compile %q: %v", q, err)
				}
				ctxSeq, _ := paperCtx(t)
				ctxPar, _ := paperCtx(t)
				ctxPar.WithWorkers(8).WithWorkerLimiter(grantAll{})
				outSeq, errSeq := compiled.EvalString(ctxSeq)
				outPar, errPar := compiled.EvalString(ctxPar)
				if errCode(errSeq) != errCode(errPar) {
					t.Errorf("%q: error mismatch: sequential %v vs workers %v", q, errSeq, errPar)
					continue
				}
				if errSeq == nil && outSeq != outPar {
					t.Errorf("%q: result mismatch:\n  sequential: %q\n  workers:    %q", q, outSeq, outPar)
				}
			}
		})
	}
}

// morselDeepQueries run over a document large enough that the path-scan,
// structural-join, and FLWOR morsel loops genuinely split into parallel
// rounds (the paper suite's bib document is far below the thresholds).
var morselDeepQueries = []string{
	// Descendant range scans over the pre-order array.
	`count(//a)`,
	`count(//b) + count(//c)`,
	`string-join((//a)[position() <= 20]/local-name(), "")`,
	// Structural-join chains (postings feeds at scale).
	`count(//a//b)`,
	`count(//a//b//c)`,
	`(//a//b)[500]/local-name()`,
	// FLWOR tuple pipelines.
	`sum(for $i in 1 to 20000 return $i mod 7)`,
	`string-join(for $b in //b return local-name($b), "")`,
	`count(for $a in //a where count($a/*) > 2 return $a)`,
	// Error position must not depend on worker count.
	`count(for $i in 1 to 20000 return 1 idiv (20000 - $i))`,
	`sum(for $i in 1 to 20000 return if ($i = 19999) then "boom" else 1)`,
}

func TestMorselDifferentialDeepDoc(t *testing.T) {
	doc := xqgo.FromStore(workload.Deep(workload.DeepConfig{Nodes: 60000, Seed: 2}))
	for _, os := range batchDiffOptSets {
		t.Run(os.name, func(t *testing.T) {
			for _, q := range morselDeepQueries {
				compiled, err := xqgo.Compile(q, &os.opts)
				if err != nil {
					t.Fatalf("compile %q: %v", q, err)
				}
				base := ""
				var baseErr error
				for i, workers := range []int{0, 2, 8} {
					ctx := xqgo.NewContext().WithContextNode(doc)
					if workers > 0 {
						ctx.WithWorkers(workers).WithWorkerLimiter(grantAll{})
					}
					out, err := compiled.EvalString(ctx)
					if i == 0 {
						base, baseErr = out, err
						continue
					}
					if errCode(err) != errCode(baseErr) {
						t.Errorf("%q: workers=%d error mismatch: %v vs sequential %v",
							q, workers, err, baseErr)
						continue
					}
					if baseErr == nil && out != base {
						t.Errorf("%q: workers=%d result mismatch:\n  sequential: %q\n  workers:    %q",
							q, workers, base, out)
					}
				}
			}
		})
	}
}

// Concurrent executions of one shared plan, each with morsel workers: the
// per-execution state (buffer pools, profile shards, step counters) must
// stay isolated while the shared caches (indexes, memo) stay consistent.
func TestMorselConcurrentExecutions(t *testing.T) {
	doc := xqgo.FromStore(workload.Deep(workload.DeepConfig{Nodes: 30000, Seed: 7}))
	opts := xqgo.Options{Strategy: xqgo.ForceBinaryJoin}
	compiled, err := xqgo.Compile(`count(//a//b)`, &opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := compiled.EvalString(xqgo.NewContext().WithContextNode(doc))
	if err != nil {
		t.Fatal(err)
	}
	const runs = 8
	errs := make(chan error, runs)
	for i := 0; i < runs; i++ {
		go func() {
			ctx := xqgo.NewContext().WithContextNode(doc).WithWorkers(4).WithWorkerLimiter(grantAll{})
			got, err := compiled.EvalString(ctx)
			if err == nil && got != want {
				err = fmt.Errorf("concurrent run: got %q, want %q", got, want)
			}
			errs <- err
		}()
	}
	for i := 0; i < runs; i++ {
		if err := <-errs; err != nil {
			t.Error(err)
		}
	}
}
