package xqgo_test

// Integration suite in the spirit of the XMark/use-case benchmarks: a set
// of realistic queries over the generated bibliography, each cross-checked
// against an independent Go computation over the same tree.

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"xqgo"
	"xqgo/internal/workload"
)

type bibFacts struct {
	books      int
	byYear     map[string]int
	byPub      map[string]int
	prices     []float64
	titles     []string
	authorsPer []int
}

// factsOf computes ground truth by walking the tree with the Node API only.
func factsOf(doc *xqgo.Document) bibFacts {
	f := bibFacts{byYear: map[string]int{}, byPub: map[string]int{}}
	bib := doc.Root().ChildrenOf()[0]
	for _, b := range bib.ChildrenOf() {
		if b.NodeName().Local != "book" {
			continue
		}
		f.books++
		for _, a := range b.AttributesOf() {
			if a.NodeName().Local == "year" {
				f.byYear[a.StringValue()]++
			}
		}
		authors := 0
		for _, c := range b.ChildrenOf() {
			switch c.NodeName().Local {
			case "publisher":
				f.byPub[c.StringValue()]++
			case "price":
				p, _ := strconv.ParseFloat(c.StringValue(), 64)
				f.prices = append(f.prices, p)
			case "title":
				f.titles = append(f.titles, c.StringValue())
			case "author":
				authors++
			}
		}
		f.authorsPer = append(f.authorsPer, authors)
	}
	return f
}

func TestUseCaseSuite(t *testing.T) {
	doc := xqgo.FromStore(workload.Bib(workload.BibConfig{Books: 120, Seed: 99}))
	facts := factsOf(doc)
	ctx := func() *xqgo.Context { return xqgo.NewContext().WithContextNode(doc) }

	eval := func(q string) string {
		t.Helper()
		compiled, err := xqgo.Compile(q, nil)
		if err != nil {
			t.Fatalf("compile %q: %v", q, err)
		}
		out, err := compiled.EvalString(ctx())
		if err != nil {
			t.Fatalf("eval %q: %v", q, err)
		}
		return out
	}

	// U1: exact-match lookup count by attribute.
	for year, want := range facts.byYear {
		got := eval(fmt.Sprintf(`count(/bib/book[@year = "%s"])`, year))
		if got != fmt.Sprint(want) {
			t.Errorf("U1 year %s: %s, want %d", year, got, want)
		}
		break // one representative year keeps the test fast
	}

	// U2: total count.
	if got := eval(`count(//book)`); got != fmt.Sprint(facts.books) {
		t.Errorf("U2 count = %s, want %d", got, facts.books)
	}

	// U3: aggregate over typed values.
	var sum float64
	for _, p := range facts.prices {
		sum += p
	}
	got := eval(`round(sum(for $p in //price return xs:decimal($p)) * 100) div 100`)
	want := fmt.Sprintf("%.2f", sum)
	if gf, _ := strconv.ParseFloat(got, 64); fmt.Sprintf("%.2f", gf) != want {
		t.Errorf("U3 price sum = %s, want %s", got, want)
	}

	// U4: max/min.
	maxP, minP := facts.prices[0], facts.prices[0]
	for _, p := range facts.prices {
		if p > maxP {
			maxP = p
		}
		if p < minP {
			minP = p
		}
	}
	if got := eval(`string(max(for $p in //price return xs:decimal($p)))`); got != trimF(maxP) {
		t.Errorf("U4 max = %s, want %s", got, trimF(maxP))
	}
	if got := eval(`string(min(for $p in //price return xs:decimal($p)))`); got != trimF(minP) {
		t.Errorf("U4 min = %s, want %s", got, trimF(minP))
	}

	// U5: grouping-style nested FLWOR per publisher.
	for pub, want := range facts.byPub {
		got := eval(fmt.Sprintf(`count(/bib/book[publisher = "%s"])`, strings.ReplaceAll(pub, `"`, `&quot;`)))
		if got != fmt.Sprint(want) {
			t.Errorf("U5 publisher %q: %s, want %d", pub, got, want)
		}
		break
	}

	// U6: ordered selection — the three cheapest books, titles ascending by
	// price; verify against sorted ground truth.
	got = eval(`string-join(
	  subsequence(
	    for $b in /bib/book order by xs:decimal($b/price), string($b/title) return string($b/price),
	    1, 3), ",")`)
	type pair struct {
		p float64
		t string
	}
	var ps []pair
	bib := doc.Root().ChildrenOf()[0]
	for _, b := range bib.ChildrenOf() {
		var price float64
		var title string
		for _, c := range b.ChildrenOf() {
			if c.NodeName().Local == "price" {
				price, _ = strconv.ParseFloat(c.StringValue(), 64)
			}
			if c.NodeName().Local == "title" {
				title = c.StringValue()
			}
		}
		ps = append(ps, pair{price, title})
	}
	for i := 0; i < len(ps); i++ {
		for j := i + 1; j < len(ps); j++ {
			if ps[j].p < ps[i].p || (ps[j].p == ps[i].p && ps[j].t < ps[i].t) {
				ps[i], ps[j] = ps[j], ps[i]
			}
		}
	}
	wantJoin := trimF(ps[0].p) + "," + trimF(ps[1].p) + "," + trimF(ps[2].p)
	if got != wantJoin {
		t.Errorf("U6 cheapest = %q, want %q", got, wantJoin)
	}

	// U7: existential author predicate matches per-book author counts.
	multi := 0
	for _, n := range facts.authorsPer {
		if n >= 2 {
			multi++
		}
	}
	if got := eval(`count(/bib/book[count(author) ge 2])`); got != fmt.Sprint(multi) {
		t.Errorf("U7 multi-author = %s, want %d", got, multi)
	}

	// U8: restructuring — invert book->author into author-last -> titles;
	// verify total pair count.
	pairs := 0
	for _, n := range facts.authorsPer {
		pairs += n
	}
	if got := eval(`count(for $b in /bib/book, $a in $b/author return <p/> )`); got != fmt.Sprint(pairs) {
		t.Errorf("U8 pairs = %s, want %d", got, pairs)
	}

	// U9: construction round trip — transform then re-query the result via
	// a document constructor.
	got = eval(`count(document {
	    <catalog>{ for $b in /bib/book return <item>{string($b/title)}</item> }</catalog>
	  }/catalog/item)`)
	if got != fmt.Sprint(facts.books) {
		t.Errorf("U9 transformed count = %s, want %d", got, facts.books)
	}

	// U10: string processing over titles.
	withData := 0
	for _, title := range facts.titles {
		if strings.Contains(title, "Data") {
			withData++
		}
	}
	if got := eval(`count(//title[contains(., "Data")])`); got != fmt.Sprint(withData) {
		t.Errorf("U10 contains = %s, want %d", got, withData)
	}
}

// trimF renders a float the way xs:decimal lexical form does (no trailing
// zeros).
func trimF(f float64) string {
	s := strconv.FormatFloat(f, 'f', 2, 64)
	s = strings.TrimRight(s, "0")
	s = strings.TrimSuffix(s, ".")
	return s
}
