package xqgo_test

// Per-query memory budgets: a capped execution over a streamed input must
// fail with the structured XQGO0001 error — not OOM — while uncapped
// executions of the same plan, running concurrently, are unaffected.

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"

	"xqgo"
)

func TestMemoryBudgetTripsOnStreamedMaterialization(t *testing.T) {
	doc := ordersXML(5000)
	q := xqgo.MustCompile(`count(/Order/OrderLine)`, nil)

	ctx := xqgo.NewContext().
		WithStreamingInput(strings.NewReader(doc), "mem:feed").
		WithMemoryBudget(16 << 10)
	_, err := q.EvalString(ctx)
	if err == nil {
		t.Fatal("16KiB budget over a multi-MB materialization did not trip")
	}
	var be *xqgo.BudgetExceededError
	if !errors.As(err, &be) {
		t.Fatalf("error %v (%T), want *BudgetExceededError in the chain", err, err)
	}
	if be.Limit != 16<<10 {
		t.Errorf("BudgetError.Limit = %d, want %d", be.Limit, 16<<10)
	}
	if !strings.Contains(err.Error(), "XQGO0001") {
		t.Errorf("error %q does not carry the structured code", err)
	}
}

func TestMemoryBudgetGenerousCapDoesNotTrip(t *testing.T) {
	doc := ordersXML(200)
	q := xqgo.MustCompile(`count(/Order/OrderLine)`, nil)

	want, err := q.EvalString(xqgo.NewContext().
		WithStreamingInput(strings.NewReader(doc), "mem:feed"))
	if err != nil {
		t.Fatal(err)
	}
	ctx := xqgo.NewContext().
		WithStreamingInput(strings.NewReader(doc), "mem:feed").
		WithMemoryBudget(1 << 30)
	got, err := q.EvalString(ctx)
	if err != nil {
		t.Fatalf("budgeted run under a generous cap: %v", err)
	}
	if got != want {
		t.Errorf("budgeted result %q != unbudgeted %q", got, want)
	}
	if ctx.Budget().Peak() == 0 {
		t.Error("budget saw no charges — hot paths are not wired")
	}
}

func TestMemoryBudgetConcurrentQueriesUnaffected(t *testing.T) {
	doc := ordersXML(2000)
	q := xqgo.MustCompile(`count(/Order/OrderLine)`, nil)

	want, err := q.EvalString(xqgo.NewContext().
		WithStreamingInput(strings.NewReader(doc), "mem:feed"))
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make([]error, 8)
	outs := make([]string, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := xqgo.NewContext().
				WithStreamingInput(strings.NewReader(doc), "mem:feed")
			if i%2 == 0 {
				ctx.WithMemoryBudget(8 << 10) // trips
			}
			outs[i], errs[i] = q.EvalString(ctx)
		}(i)
	}
	wg.Wait()
	for i := 0; i < 8; i++ {
		var be *xqgo.BudgetExceededError
		if i%2 == 0 {
			if !errors.As(errs[i], &be) {
				t.Errorf("budgeted run %d: err = %v, want budget error", i, errs[i])
			}
			continue
		}
		if errs[i] != nil {
			t.Errorf("unbudgeted run %d poisoned by sibling budgets: %v", i, errs[i])
		} else if outs[i] != want {
			t.Errorf("unbudgeted run %d: %q, want %q", i, outs[i], want)
		}
	}
}

func TestGovernedBudgetReleasedAfterQuery(t *testing.T) {
	gov := xqgo.NewMemoryGovernor(1 << 30)
	b := gov.Governed(0) // track, never trip
	doc := ordersXML(500)
	q := xqgo.MustCompile(`count(/Order/OrderLine)`, nil)

	ctx := xqgo.NewContext().
		WithStreamingInput(strings.NewReader(doc), "mem:feed").
		WithBudget(b)
	if _, err := q.EvalString(ctx); err != nil {
		t.Fatal(err)
	}
	if gov.InUse() == 0 {
		t.Error("governor saw no live bytes during the query")
	}
	b.ReleaseAll()
	if got := gov.InUse(); got != 0 {
		t.Errorf("governor InUse after ReleaseAll = %d, want 0", got)
	}
	if b.Peak() == 0 {
		t.Error("budget peak is zero — nothing was charged")
	}
}

func TestWithMemoryBudgetNonPositiveClears(t *testing.T) {
	ctx := xqgo.NewContext().WithMemoryBudget(100)
	if ctx.Budget() == nil {
		t.Fatal("budget not attached")
	}
	ctx.WithMemoryBudget(0)
	if ctx.Budget() != nil {
		t.Fatal("WithMemoryBudget(0) should detach the budget")
	}
}

// The serializer path: a budgeted streamed execution that trips mid-write
// must stop producing output promptly rather than streaming the full result.
func TestMemoryBudgetStopsExecution(t *testing.T) {
	doc := ordersXML(5000)
	q := xqgo.MustCompile(`/Order/OrderLine/Item/ID`, nil)
	var buf bytes.Buffer
	ctx := xqgo.NewContext().
		WithStreamingInput(strings.NewReader(doc), "mem:feed").
		WithMemoryBudget(16 << 10)
	err := q.Execute(ctx, &buf)
	if err == nil {
		t.Fatal("expected budget trip")
	}
	var be *xqgo.BudgetExceededError
	if !errors.As(err, &be) {
		t.Fatalf("error %v, want budget error", err)
	}
	if int64(buf.Len()) > 1<<20 {
		t.Errorf("wrote %d bytes after a 16KiB budget trip", buf.Len())
	}
}
