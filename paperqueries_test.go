package xqgo_test

// Queries lifted from the paper's own slides, run end to end: the FLWOR
// examples, the comparison-semantics table, the LET-folding hazards, the
// parallel-safety examples, and the use-case fragments.

import (
	"strings"
	"testing"

	"xqgo"
)

const paperBib = `<bib>
 <book year="1998">
   <title>The politics of experience</title>
   <author><firstname>ronald</firstname><lastname>Laing</lastname></author>
   <publisher>Springer Verlag</publisher>
   <price>20</price>
 </book>
 <book year="1967">
   <title>Ulysses</title>
   <author><firstname>James</firstname><lastname>Joyce</lastname></author>
   <author gender="female"><firstname>Assistant</firstname><lastname>Editor</lastname></author>
   <publisher>Shakespeare</publisher>
   <price>30</price>
 </book>
</bib>`

func paperCtx(t *testing.T) (*xqgo.Context, *xqgo.Document) {
	t.Helper()
	doc, err := xqgo.ParseString(paperBib, "bib.xml")
	if err != nil {
		t.Fatal(err)
	}
	return xqgo.NewContext().WithContextNode(doc).RegisterDocument("bib.xml", doc), doc
}

func evalP(t *testing.T, q string) string {
	t.Helper()
	ctx, _ := paperCtx(t)
	compiled, err := xqgo.Compile(q, nil)
	if err != nil {
		t.Fatalf("compile %q: %v", q, err)
	}
	out, err := compiled.EvalString(ctx)
	if err != nil {
		t.Fatalf("eval %q: %v", q, err)
	}
	return out
}

// The "Simple iteration expression" slide.
func TestPaperSimpleIteration(t *testing.T) {
	got := evalP(t, `for $x in document("bib.xml")/bib/book return $x/title`)
	if !strings.Contains(got, "<title>The politics of experience</title>") ||
		!strings.Contains(got, "<title>Ulysses</title>") {
		t.Errorf("iteration output: %q", got)
	}
}

// The "Local variable declaration" slide.
func TestPaperLetCount(t *testing.T) {
	if got := evalP(t, `let $x := document("bib.xml")/bib/book return count($x)`); got != "2" {
		t.Errorf("let count = %q", got)
	}
}

// The "FLWR expression semantics" slide: for/let/where is equivalent to
// for + nested let + if.
func TestPaperFlwrEquivalence(t *testing.T) {
	a := evalP(t, `
	  for $x in //bib/book
	  let $y := $x/author
	  where $x/title = "Ulysses"
	  return count($y)`)
	b := evalP(t, `
	  for $x in //bib/book
	  return (let $y := $x/author
	          return if ($x/title = "Ulysses") then count($y) else ())`)
	if a != b || a != "2" {
		t.Errorf("FLWR desugaring: %q vs %q (want 2)", a, b)
	}
}

// The "More FLWR expression examples" slide: selection.
func TestPaperSelection(t *testing.T) {
	got := evalP(t, `
	  for $b in document("bib.xml")//book
	  where $b/publisher = "Springer Verlag" and $b/@year = "1998"
	  return $b/title`)
	if got != "<title>The politics of experience</title>" {
		t.Errorf("selection = %q", got)
	}
}

// The "Xpath filter predicates" slide.
func TestPaperFilterPredicates(t *testing.T) {
	if got := evalP(t, `count(//book[author/firstname = "ronald"])`); got != "1" {
		t.Errorf("author/firstname predicate = %q", got)
	}
	if got := evalP(t, `count(//book[@price < 25])`); got != "0" {
		t.Errorf("@price predicate = %q (no price attributes)", got)
	}
	if got := evalP(t, `count(//book[count(author[@gender="female"]) > 0])`); got != "1" {
		t.Errorf("nested count predicate = %q", got)
	}
	// The "classical Xpath mistake": $x/a/b[1] is per-a, (/a/b)[1] global.
	perA := evalP(t, `count(/bib/book/author[1])`)
	global := evalP(t, `count((/bib/book/author)[1])`)
	if perA != "2" || global != "1" {
		t.Errorf("classical mistake: per-a %s (want 2), global %s (want 1)", perA, global)
	}
}

// The "Value and general comparisons" slide, element forms.
func TestPaperComparisonTable(t *testing.T) {
	cases := map[string]string{
		`<a>42</a> eq "42"`:           "true",
		`<a>42</a> = 42`:              "true",
		`<a>42</a> = 42.0`:            "true",
		`<a>42</a> eq <b>42</b>`:      "true",
		`() = 42`:                     "false",
		`(<a>42</a>, <b>43</b>) = 42`: "true",
		`(1,2) = (2,3)`:               "true",
	}
	for q, want := range cases {
		if got := evalP(t, q); got != want {
			t.Errorf("%s = %q, want %q", q, got, want)
		}
	}
	// () eq 42 evaluates to the empty sequence.
	if got := evalP(t, `count(() eq 42)`); got != "0" {
		t.Errorf("() eq 42 should be empty, count = %q", got)
	}
}

// The "LET clause folding" slide: ($x, $x) over a constructor must keep
// two references to ONE node.
func TestPaperLetFoldingHazard(t *testing.T) {
	got := evalP(t, `let $x := <a/> return count(distinct-nodes(($x, $x)))`)
	if got != "1" {
		t.Errorf("let $x := <a/> return ($x,$x): distinct nodes = %q, want 1", got)
	}
	// Without the binding, two constructors create two nodes.
	got = evalP(t, `count(distinct-nodes((<a/>, <a/>)))`)
	if got != "2" {
		t.Errorf("(<a/>, <a/>): distinct nodes = %q, want 2", got)
	}
}

// The "Nested scopes" slide: a constructor-local namespace wins for names
// inside it.
func TestPaperNestedNamespaceScopes(t *testing.T) {
	got := evalP(t, `
	  declare namespace ns = "uri1";
	  <b xmlns:ns="uri2">{ namespace-uri-from-QName(node-name(<ns:a/>)) }</b>`)
	if !strings.Contains(got, "uri2") {
		t.Errorf("constructor scope should rebind ns: %q", got)
	}
}

// The "Dealing with backwards navigation" slide: $x/a/.. round trip.
func TestPaperBackwardNavigation(t *testing.T) {
	a := evalP(t, `count(/bib/book/title/..)`)
	if a != "2" {
		t.Errorf("/bib/book/title/.. = %q, want 2 (the books)", a)
	}
	// And the rewritten form agrees.
	b := evalP(t, `count(/bib/book[title])`)
	if a != b {
		t.Errorf("backward-free form disagrees: %s vs %s", a, b)
	}
}

// The conditional slide: "Only one branch allowed to raise execution
// errors".
func TestPaperConditionalErrors(t *testing.T) {
	got := evalP(t, `
	  for $book in /bib/book
	  return if ($book/@year < 1980)
	         then <old>{$book/title/text()}</old>
	         else <new>{$book/title/text()}</new>`)
	if !strings.Contains(got, "<old>Ulysses</old>") ||
		!strings.Contains(got, "<new>The politics of experience</new>") {
		t.Errorf("conditional constructor output: %q", got)
	}
}

// The customer-query fragment style: conditional attribute construction
// with div (the ebXML ttl/1000 pattern).
func TestPaperConditionalAttribute(t *testing.T) {
	got := evalP(t, `
	  let $ttl := <x ttl="33000"/>
	  return <binding>{
	    if (empty($ttl/@ttl)) then ()
	    else attribute persist-duration { concat(($ttl/@ttl div 1000), " seconds") }
	  }</binding>`)
	if got != `<binding persist-duration="33 seconds"/>` {
		t.Errorf("conditional attribute = %q", got)
	}
}

// The "A built-in function sampler" slide.
func TestPaperFunctionSampler(t *testing.T) {
	cases := map[string]string{
		`empty(())`:                      "true",
		`index-of((10, 20, 30), 20)`:     "2",
		`distinct-values((1, 1, 2))`:     "1 2",
		`string-length("politics")`:      "8",
		`contains("experience", "peri")`: "true",
		`true()`:                         "true",
		`string(date("2002-05-20"))`:     "2002-05-20",
		`string(add-date(date("2002-05-20"), xdt:dayTimeDuration("P2D")))`: "2002-05-22",
	}
	for q, want := range cases {
		if got := evalP(t, q); got != want {
			t.Errorf("%s = %q, want %q", q, got, want)
		}
	}
}

// The "Combining sequences" slide.
func TestPaperCombiningSequences(t *testing.T) {
	got := evalP(t, `
	  let $d := <r><a/><b/><c/></r>
	  let $x := $d/a let $y := $d/b let $z := $d/c
	  return for $n in (($x, $y) union ($y, $z)) return local-name($n)`)
	if got != "a b c" {
		t.Errorf("union result = %q, want 'a b c'", got)
	}
}
