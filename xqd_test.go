package xqgo_test

// End-to-end tests of the xqd service layer over a real TCP listener: the
// acceptance workload for the serving subsystem — register a generated
// document over HTTP, hammer one query concurrently and verify plan-cache
// reuse and identical results, saturate the admission queue, and exceed a
// deadline. A subprocess smoke test exercises the cmd/xqd binary itself.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"xqgo"
	"xqgo/internal/leakcheck"
	"xqgo/internal/service"
	"xqgo/internal/workload"
)

// startServer serves the handler on a real ephemeral TCP port and returns
// the base URL.
func startServer(t *testing.T, svc *service.Service) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: service.NewHTTPHandler(svc)}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return "http://" + ln.Addr().String()
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

type queryResp struct {
	Result string `json:"result"`
	Cached bool   `json:"cached"`
	Micros int64  `json:"micros"`
	Error  string `json:"error"`
}

func getStats(t *testing.T, base string) service.Snapshot {
	t.Helper()
	resp, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap service.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

func TestXqdEndToEnd(t *testing.T) {
	leakcheck.Check(t)
	svc := service.New(service.Config{
		Workers:       8,
		QueueDepth:    256,
		PlanCacheSize: 32,
		Options:       xqgo.Options{Strategy: xqgo.ForceBinaryJoin, MemoizeFunctions: true},
	})
	base := startServer(t, svc)

	// Register a workload-generated Order document over HTTP.
	doc := workload.Orders(workload.OrdersConfig{Lines: 300, Sellers: 5, Seed: 7})
	xml := workload.DocToXML(doc)
	req, err := http.NewRequest(http.MethodPut, base+"/documents/orders", strings.NewReader(xml))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var info service.DocInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register status = %d", resp.StatusCode)
	}
	if info.Bytes != int64(len(xml)) || info.Nodes != doc.NumNodes() {
		t.Errorf("info = %+v, want bytes=%d nodes=%d", info, len(xml), doc.NumNodes())
	}

	// The paper's Q1 shape over the registered document.
	q := map[string]any{
		"query": `for $line in /Order/OrderLine
			where $line/SellersID = 1
			return <lineItem>{string($line/Item/ID)}</lineItem>`,
		"doc": "orders",
	}

	// Warm the plan cache, capture the reference result.
	r0, body := postJSON(t, base+"/query", q)
	if r0.StatusCode != http.StatusOK {
		t.Fatalf("warm-up status = %d: %s", r0.StatusCode, body)
	}
	var ref queryResp
	if err := json.Unmarshal(body, &ref); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ref.Result, "<lineItem>SKU-") {
		t.Fatalf("unexpected result: %.120s", ref.Result)
	}

	// 100 concurrent requests: identical results, served from the cache.
	const n = 100
	results := make([]queryResp, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data, _ := json.Marshal(q)
			resp, err := http.Post(base+"/query", "application/json", bytes.NewReader(data))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b, _ := io.ReadAll(resp.Body)
				errs[i] = fmt.Errorf("status %d: %s", resp.StatusCode, b)
				return
			}
			errs[i] = json.NewDecoder(resp.Body).Decode(&results[i])
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if results[i].Result != ref.Result {
			t.Fatalf("request %d produced a different result", i)
		}
		if !results[i].Cached {
			t.Errorf("request %d missed the plan cache", i)
		}
	}

	snap := getStats(t, base)
	if snap.Served < n+1 {
		t.Errorf("served = %d, want >= %d", snap.Served, n+1)
	}
	if snap.PlanCache.HitRatio <= 0.9 {
		t.Errorf("plan-cache hit ratio = %.3f, want > 0.9 (%+v)", snap.PlanCache.HitRatio, snap.PlanCache)
	}
	if snap.P99Micros < snap.P50Micros || snap.P50Micros <= 0 {
		t.Errorf("percentiles look wrong: p50=%d p99=%d", snap.P50Micros, snap.P99Micros)
	}

	// Streamed output matches the materialized result.
	qs := map[string]any{"query": q["query"], "doc": "orders", "stream": true}
	rs, streamed := postJSON(t, base+"/query", qs)
	if rs.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d", rs.StatusCode)
	}
	if string(streamed) != ref.Result {
		t.Errorf("streamed result differs from materialized result")
	}

	// Variable binding over the JSON endpoint (typed slices).
	qv := map[string]any{
		"query": `declare variable $ids external; count(/Order/OrderLine[SellersID = $ids])`,
		"doc":   "orders",
		"vars":  map[string]any{"ids": []int{1, 2}},
	}
	rv, body := postJSON(t, base+"/query", qv)
	if rv.StatusCode != http.StatusOK {
		t.Fatalf("vars status = %d: %s", rv.StatusCode, body)
	}

	// Document lifecycle: list, info, evict, 404 afterwards.
	resp, err = http.Get(base + "/documents")
	if err != nil {
		t.Fatal(err)
	}
	var list []service.DocInfo
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != 1 || list[0].Name != "orders" {
		t.Errorf("list = %+v", list)
	}
	del, _ := http.NewRequest(http.MethodDelete, base+"/documents/orders", nil)
	resp, err = http.DefaultClient.Do(del)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Errorf("delete status = %d", resp.StatusCode)
	}
	rq, body := postJSON(t, base+"/query", q)
	if rq.StatusCode != http.StatusNotFound {
		t.Errorf("query after evict status = %d: %s", rq.StatusCode, body)
	}
}

// slowQuery runs long enough to occupy a worker until its deadline.
const slowQuery = "count(for $i in 1 to 2000000000 return $i)"

func TestXqdAdmissionControlSaturation(t *testing.T) {
	leakcheck.Check(t)
	svc := service.New(service.Config{
		Workers:        1,
		QueueDepth:     1,
		DefaultTimeout: 5 * time.Second,
	})
	base := startServer(t, svc)

	// Occupy the single worker and the single queue slot with slow queries.
	release := make([]chan struct{}, 2)
	done := make([]chan int, 2)
	for i := range release {
		release[i] = make(chan struct{})
		done[i] = make(chan int, 1)
		go func(i int) {
			data, _ := json.Marshal(map[string]any{"query": slowQuery, "timeoutMs": 3000})
			resp, err := http.Post(base+"/query", "application/json", bytes.NewReader(data))
			if err != nil {
				done[i] <- -1
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			done[i] <- resp.StatusCode
		}(i)
	}

	// Wait until the server reports one executing and one queued request.
	deadline := time.Now().Add(5 * time.Second)
	for {
		snap := getStats(t, base)
		if snap.InFlight >= 1 && snap.Queued >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never saturated: %+v", snap)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The next request must be rejected immediately with 503.
	start := time.Now()
	r, body := postJSON(t, base+"/query", map[string]any{"query": "1+1"})
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d (%s), want 503", r.StatusCode, body)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("rejection took %v, want fast-fail", d)
	}
	if !strings.Contains(string(body), "saturated") {
		t.Errorf("body = %s", body)
	}

	// Both slow requests eventually terminate (by timeout), not hang.
	for i := range done {
		select {
		case code := <-done[i]:
			if code != http.StatusGatewayTimeout {
				t.Errorf("slow request %d status = %d, want 504", i, code)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("slow request %d never returned", i)
		}
	}
	snap := getStats(t, base)
	if snap.Rejected < 1 {
		t.Errorf("rejected = %d, want >= 1", snap.Rejected)
	}
	if snap.Timeouts < 2 {
		t.Errorf("timeouts = %d, want >= 2", snap.Timeouts)
	}
}

func TestXqdDeadlineExceeded(t *testing.T) {
	leakcheck.Check(t)
	svc := service.New(service.Config{Workers: 2})
	base := startServer(t, svc)

	start := time.Now()
	r, body := postJSON(t, base+"/query", map[string]any{
		"query":     slowQuery,
		"timeoutMs": 50,
	})
	elapsed := time.Since(start)
	if r.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (%s), want 504", r.StatusCode, body)
	}
	if elapsed > 5*time.Second {
		t.Errorf("timed-out request took %v — deadline not propagated into evaluation", elapsed)
	}
	if !strings.Contains(string(body), "deadline") {
		t.Errorf("body = %s", body)
	}
}

// TestXqdDaemonSmoke runs the real cmd/xqd binary on an ephemeral port and
// drives it over HTTP.
func TestXqdDaemonSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping subprocess test in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "xqd")
	if _, errOut, err := runTool(t, "build", "-o", bin, "./cmd/xqd"); err != nil {
		t.Fatalf("go build ./cmd/xqd: %v\n%s", err, errOut)
	}
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})

	// The daemon announces its bound address on stdout.
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatal("no startup line from xqd")
	}
	line := sc.Text()
	const prefix = "xqd listening on "
	if !strings.HasPrefix(line, prefix) {
		t.Fatalf("startup line = %q", line)
	}
	base := "http://" + strings.TrimPrefix(line, prefix)

	req, _ := http.NewRequest(http.MethodPut, base+"/documents/bib",
		strings.NewReader(`<bib><book year="1994"><title>TCP/IP</title></book></bib>`))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register status = %d", resp.StatusCode)
	}

	r, body := postJSON(t, base+"/query", map[string]any{
		"query": "string(/bib/book/title)", "doc": "bib",
	})
	if r.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d: %s", r.StatusCode, body)
	}
	var qr queryResp
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Result != "TCP/IP" {
		t.Errorf("result = %q", qr.Result)
	}

	resp, err = http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status = %d", resp.StatusCode)
	}
}

// TestXqdGracefulShutdown: SIGTERM drains the daemon — a live /subscribe
// feed (client still mid-upload) receives a terminal "goodbye" SSE event and
// the process exits cleanly within the drain deadline. The subscription is
// driven over raw TCP with chunked transfer encoding, so the half-finished
// request body and the streaming response stay fully under test control.
func TestXqdGracefulShutdown(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping subprocess test in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "xqd")
	if _, errOut, err := runTool(t, "build", "-o", bin, "./cmd/xqd"); err != nil {
		t.Fatalf("go build ./cmd/xqd: %v\n%s", err, errOut)
	}
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-drain", "5s")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})

	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatal("no startup line from xqd")
	}
	addr := strings.TrimPrefix(sc.Text(), "xqd listening on ")

	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(15 * time.Second))

	// Open the subscription with a chunked body that never finishes: one
	// complete book arrives, then the feed goes silent.
	fmt.Fprintf(conn, "POST /subscribe?query=%%2Fbib%%2Fbook HTTP/1.1\r\n"+
		"Host: %s\r\nTransfer-Encoding: chunked\r\nContent-Type: application/xml\r\n\r\n", addr)
	chunk := "<bib><book><title>live</title></book>"
	fmt.Fprintf(conn, "%x\r\n%s\r\n", len(chunk), chunk)

	// The first result proves the subscription is live and streaming.
	waitConn := func(substr string, got *strings.Builder) {
		t.Helper()
		buf := make([]byte, 4096)
		for !strings.Contains(got.String(), substr) {
			n, err := conn.Read(buf)
			got.Write(buf[:n])
			if err != nil {
				t.Fatalf("waiting for %q: %v (got %q)", substr, err, got.String())
			}
		}
	}
	var stream strings.Builder
	waitConn("event: result", &stream)

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitConn("event: goodbye", &stream)

	// Drain stdout to EOF (the process closing it) before Wait — Wait tears
	// the pipe down and would race the banner away.
	tailCh := make(chan string, 1)
	go func() {
		var tail strings.Builder
		for sc.Scan() {
			tail.WriteString(sc.Text())
		}
		tailCh <- tail.String()
	}()
	var tail string
	select {
	case tail = <-tailCh:
	case <-time.After(10 * time.Second):
		t.Fatal("xqd did not exit within the drain deadline")
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("xqd exited with error: %v", err)
	}
	if !strings.Contains(tail, "xqd shut down") {
		t.Errorf("missing shutdown banner in stdout: %q", tail)
	}
}
