package xqgo_test

import (
	"context"
	"fmt"
	"os"
	"strings"
	"time"

	"xqgo"
)

func ExampleCompile() {
	doc, _ := xqgo.ParseString(
		`<bib><book year="1994"><title>TCP/IP Illustrated</title></book></bib>`, "bib.xml")
	q, _ := xqgo.Compile(`/bib/book/@year/data(.)`, nil)
	out, _ := q.EvalString(xqgo.NewContext().WithContextNode(doc))
	fmt.Println(out)
	// Output: 1994
}

func ExampleQuery_Execute() {
	doc, _ := xqgo.ParseString(`<l><i>1</i><i>2</i></l>`, "l.xml")
	q, _ := xqgo.Compile(`<sum>{sum(for $i in /l/i return xs:integer($i))}</sum>`, nil)
	_ = q.Execute(xqgo.NewContext().WithContextNode(doc), os.Stdout)
	fmt.Println()
	// Output: <sum>3</sum>
}

func ExampleQuery_Iterator() {
	q, _ := xqgo.Compile(`for $i in (1 to 3) return $i * 10`, nil)
	it, _ := q.Iterator(xqgo.NewContext())
	for {
		item, ok, err := it.Next()
		if err != nil || !ok {
			break
		}
		s, _ := xqgo.ItemString(item)
		fmt.Println(s)
	}
	// Output:
	// 10
	// 20
	// 30
}

func ExampleContext_Bind() {
	q, _ := xqgo.Compile(`declare variable $n external; $n * $n`, nil)
	out, _ := q.EvalString(xqgo.NewContext().Bind("n", 12))
	fmt.Println(out)
	// Output: 144
}

func ExampleDocument_BuildIndex() {
	doc, _ := xqgo.ParseString(`<r><a><b/><a><b/></a></a><b/></r>`, "r.xml")
	idx := doc.BuildIndex()
	fmt.Println(len(idx.Descendants("a", "b", xqgo.StackTree)))
	stats, _ := idx.CountTwig("a//b")
	fmt.Println(stats.PathSolutions)
	// Output:
	// 2
	// 3
}

func ExampleQuery_EvalContext() {
	q, _ := xqgo.Compile(`sum(1 to 100)`, nil)
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	seq, _ := q.EvalContext(ctx, xqgo.NewContext())
	s, _ := xqgo.ItemString(seq[0])
	fmt.Println(s)
	// Output: 5050
}

func ExampleQuery_Items() {
	q, _ := xqgo.Compile(`for $w in ("ab", "cde", "f") return string-length($w)`, nil)
	for item, err := range q.Items(xqgo.NewContext()) {
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		s, _ := xqgo.ItemString(item)
		fmt.Println(s)
	}
	// Output:
	// 2
	// 3
	// 1
}

func ExampleContext_WithStreamingInput() {
	// The input document is parsed on demand while the result is produced;
	// subtrees the query cannot touch are skipped via static projection.
	xml := `<bib><book><title>TCP/IP Illustrated</title><price>65.95</price></book></bib>`
	q, _ := xqgo.Compile(`/bib/book/title`, nil)
	ctx := xqgo.NewContext().WithStreamingInput(strings.NewReader(xml), "bib.xml")
	_ = q.Execute(ctx, os.Stdout)
	fmt.Println()
	// Output: <title>TCP/IP Illustrated</title>
}
