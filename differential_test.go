package xqgo_test

// Differential testing: randomly generated path/FLWOR queries are run over
// randomly generated documents with (a) the streaming engine, (b) the eager
// baseline, (c) the optimizer disabled. All three evaluations must agree —
// the equivalences the paper's rewriting rules depend on.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"xqgo"
	"xqgo/internal/workload"
)

// genQuery produces a random query over the deep dataset's element names.
func genQuery(rng *rand.Rand) string {
	names := []string{"a", "b", "c", "d", "root"}
	name := func() string { return names[rng.Intn(len(names))] }
	sep := func() string {
		if rng.Intn(2) == 0 {
			return "/"
		}
		return "//"
	}
	genPath := func() string {
		var b strings.Builder
		b.WriteString(sep())
		b.WriteString(name())
		for steps := rng.Intn(3); steps > 0; steps-- {
			b.WriteString(sep())
			b.WriteString(name())
		}
		if rng.Intn(3) == 0 {
			switch rng.Intn(3) {
			case 0:
				fmt.Fprintf(&b, "[%d]", 1+rng.Intn(3))
			case 1:
				fmt.Fprintf(&b, "[%s]", name())
			case 2:
				b.WriteString("[position() le 2]")
			}
		}
		return b.String()
	}
	switch rng.Intn(10) {
	case 0:
		return "count(" + genPath() + ")"
	case 1:
		return genPath()
	case 2:
		return fmt.Sprintf("for $x in %s return string($x)", genPath())
	case 3:
		return fmt.Sprintf("for $x in %s where exists($x/%s) return count($x/*)",
			genPath(), name())
	case 4:
		return fmt.Sprintf("some $x in %s satisfies exists($x/%s)", genPath(), name())
	case 5:
		return fmt.Sprintf("<out>{for $x in %s return <hit n=\"{local-name($x)}\"/>}</out>", genPath())
	case 6:
		return fmt.Sprintf("for $x in %s let $n := count($x/%s) where $n ge 1 order by $n descending, local-name($x) return $n",
			genPath(), name())
	case 7:
		return fmt.Sprintf("for $x in %s group by $k := local-name($x) order by $k return concat($k, \":\", count($x))",
			genPath())
	case 8:
		return fmt.Sprintf("try { sum(for $x in %s return string-length(string($x))) } catch * { -1 }",
			genPath())
	case 9:
		return fmt.Sprintf("string-join(for $x at $i in %s return concat($i, local-name($x)), \".\")",
			genPath())
	}
	return "1"
}

func TestDifferentialRandomQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(20040914))
	docs := []*xqgo.Document{
		xqgo.FromStore(workload.Deep(workload.DeepConfig{Nodes: 400, Seed: 1})),
		xqgo.FromStore(workload.Deep(workload.DeepConfig{Nodes: 400, Seed: 2, MaxDepth: 5, Fanout: 8})),
	}
	modes := []struct {
		name string
		opts *xqgo.Options
	}{
		{"streaming", nil},
		{"eager", &xqgo.Options{Engine: xqgo.Eager, NoOptimize: true}},
		{"unoptimized", &xqgo.Options{NoOptimize: true}},
	}
	const trials = 120
	for i := 0; i < trials; i++ {
		src := genQuery(rng)
		doc := docs[i%len(docs)]
		var base string
		for m, mode := range modes {
			q, err := xqgo.Compile(src, mode.opts)
			if err != nil {
				t.Fatalf("trial %d: compile %q (%s): %v", i, src, mode.name, err)
			}
			got, err := q.EvalString(xqgo.NewContext().WithContextNode(doc))
			if err != nil {
				t.Fatalf("trial %d: eval %q (%s): %v", i, src, mode.name, err)
			}
			if m == 0 {
				base = got
				continue
			}
			if got != base {
				t.Errorf("trial %d: %q\n %s: %.200q\n %s: %.200q",
					i, src, modes[0].name, base, mode.name, got)
			}
		}
	}
}

// TestDifferentialExecutePath checks the streamed Execute output equals the
// materialized serialization for random construction-heavy queries.
func TestDifferentialExecutePath(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	doc := xqgo.FromStore(workload.Deep(workload.DeepConfig{Nodes: 300, Seed: 3}))
	for i := 0; i < 40; i++ {
		src := fmt.Sprintf("<w>{for $x in //%s return <i v=\"{count($x/*)}\">{local-name($x)}</i>}</w>",
			[]string{"a", "b", "c"}[rng.Intn(3)])
		q, err := xqgo.Compile(src, nil)
		if err != nil {
			t.Fatal(err)
		}
		want, err := q.EvalString(xqgo.NewContext().WithContextNode(doc))
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := q.Execute(xqgo.NewContext().WithContextNode(doc), &sb); err != nil {
			t.Fatal(err)
		}
		if sb.String() != want {
			t.Fatalf("trial %d (%s): execute %.200q != eval %.200q", i, src, sb.String(), want)
		}
	}
}
