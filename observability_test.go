package xqgo_test

// End-to-end tests of the execution-profiling surface: the xq -explain
// report (golden) and concurrent use of one profile through the public API.

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	"xqgo"
)

const explainBib = `<bib>
  <book year="1994"><title>TCP/IP Illustrated</title><price>65.95</price></book>
  <book year="2000"><title>Data on the Web</title><price>39.95</price></book>
  <book year="1999"><title>The Economics of Technology</title><price>129.95</price></book>
</bib>`

const explainQuery = `for $b in /bib/book where $b/price < 100 return <cheap>{string($b/title)}</cheap>`

// durRE matches Go duration literals; wall times are the only run-to-run
// nondeterminism in an -explain report, so the golden file stores <dur>.
var durRE = regexp.MustCompile(`[0-9]+(\.[0-9]+)?(ns|µs|ms|s)\b`)

func TestCLIXqExplainGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CLI tests in -short mode")
	}
	docPath := filepath.Join(t.TempDir(), "bib.xml")
	if err := os.WriteFile(docPath, []byte(explainBib), 0o644); err != nil {
		t.Fatal(err)
	}
	out, errOut, err := runTool(t, "run", "./cmd/xq", "-explain", "-doc", docPath, explainQuery)
	if err != nil {
		t.Fatalf("xq -explain: %v\n%s", err, errOut)
	}
	got := durRE.ReplaceAllString(out, "<dur>")
	wantBytes, err := os.ReadFile(filepath.Join("testdata", "explain_golden.txt"))
	if err != nil {
		t.Fatal(err)
	}
	want := string(wantBytes)
	if got != want {
		gl, wl := strings.Split(got, "\n"), strings.Split(want, "\n")
		for i := 0; i < len(gl) || i < len(wl); i++ {
			g, w := "", ""
			if i < len(gl) {
				g = gl[i]
			}
			if i < len(wl) {
				w = wl[i]
			}
			if g != w {
				t.Errorf("line %d:\n got: %q\nwant: %q", i+1, g, w)
			}
		}
	}
}

// TestConcurrentProfiledQueries shares one profile across parallel contexts
// through the public API; run under -race in CI.
func TestConcurrentProfiledQueries(t *testing.T) {
	doc, err := xqgo.Parse(strings.NewReader(explainBib), "bib.xml")
	if err != nil {
		t.Fatal(err)
	}
	q := xqgo.MustCompile(explainQuery, nil)
	prof := q.NewProfile()

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := xqgo.NewContext().WithContextNode(doc).WithProfile(prof)
			if _, err := q.EvalString(ctx); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	rep := prof.Report()
	if len(rep.Operators) < 3 {
		t.Fatalf("profile has %d operators, want >= 3", len(rep.Operators))
	}
	for _, op := range rep.Operators {
		if op.Kind == "flwor" && op.Starts != workers {
			t.Errorf("flwor starts = %d, want %d", op.Starts, workers)
		}
	}
	if len(q.RuleFires()) == 0 {
		t.Error("no optimizer rules recorded as fired")
	}
}
