package xqgo_test

// End-to-end tests of the command-line tools, exercised through `go run`
// (self-contained: the module has no external dependencies).

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func runTool(t *testing.T, args ...string) (string, string, error) {
	t.Helper()
	cmd := exec.Command("go", args...)
	cmd.Dir = repoRoot(t)
	var out, errb strings.Builder
	cmd.Stdout = &out
	cmd.Stderr = &errb
	err := cmd.Run()
	return out.String(), errb.String(), err
}

func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return wd
}

func TestCLIXmlgenAndXq(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CLI tests in -short mode")
	}
	dir := t.TempDir()
	docPath := filepath.Join(dir, "orders.xml")

	// Generate a dataset.
	out, errOut, err := runTool(t, "run", "./cmd/xmlgen", "-kind", "orders", "-n", "50", "-sellers", "5")
	if err != nil {
		t.Fatalf("xmlgen: %v\n%s", err, errOut)
	}
	if !strings.Contains(out, "<Order") || !strings.Contains(out, "OrderLine") {
		t.Fatalf("xmlgen output malformed: %.200s", out)
	}
	if err := os.WriteFile(docPath, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}

	// Query it.
	out, errOut, err = runTool(t, "run", "./cmd/xq", "-doc", docPath, `count(/Order/OrderLine)`)
	if err != nil {
		t.Fatalf("xq: %v\n%s", err, errOut)
	}
	if strings.TrimSpace(out) != "50" {
		t.Errorf("xq count = %q, want 50", strings.TrimSpace(out))
	}

	// Eager engine agrees.
	out2, errOut, err := runTool(t, "run", "./cmd/xq",
		"-doc", docPath, "-engine", "eager", "-no-opt", `count(/Order/OrderLine)`)
	if err != nil {
		t.Fatalf("xq eager: %v\n%s", err, errOut)
	}
	if out2 != out {
		t.Errorf("engines disagree: %q vs %q", out2, out)
	}

	// -plan prints the expression tree.
	out, _, err = runTool(t, "run", "./cmd/xq", "-plan", `/a/b[1]`)
	if err != nil {
		t.Fatalf("xq -plan: %v", err)
	}
	if !strings.Contains(out, "child::b[1]") {
		t.Errorf("plan output = %q", out)
	}

	// External variable binding from a file.
	out, errOut, err = runTool(t, "run", "./cmd/xq",
		"-var", "d="+docPath,
		`declare variable $d external; string($d/Order/@id)`)
	if err != nil {
		t.Fatalf("xq -var: %v\n%s", err, errOut)
	}
	if !strings.HasPrefix(strings.TrimSpace(out), "47") {
		t.Errorf("var-bound query output = %q", out)
	}

	// String variable binding.
	out, _, err = runTool(t, "run", "./cmd/xq",
		"-var", "s:=world",
		`declare variable $s external; concat("hello ", $s)`)
	if err != nil {
		t.Fatalf("xq -var string: %v", err)
	}
	if strings.TrimSpace(out) != "hello world" {
		t.Errorf("string var output = %q", out)
	}

	// Errors exit non-zero with a diagnostic.
	_, errOut, err = runTool(t, "run", "./cmd/xq", `1 +`)
	if err == nil {
		t.Error("bad query should exit non-zero")
	}
	if !strings.Contains(errOut, "expected an expression") {
		t.Errorf("error output = %q", errOut)
	}
}

func TestCLIXqbenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CLI tests in -short mode")
	}
	out, errOut, err := runTool(t, "run", "./cmd/xqbench", "-only", "e9", "-reps", "1")
	if err != nil {
		t.Fatalf("xqbench: %v\n%s", err, errOut)
	}
	if !strings.Contains(out, "dictionary pooling") || !strings.Contains(out, "pooled names+values") {
		t.Errorf("xqbench output = %.300s", out)
	}
	_, errOut, err = runTool(t, "run", "./cmd/xqbench", "-only", "nosuch")
	if err == nil {
		t.Error("unknown experiment should exit non-zero")
	}
	if !strings.Contains(errOut, "unknown experiment") {
		t.Errorf("stderr = %q", errOut)
	}
}
