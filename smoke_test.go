package xqgo_test

import (
	"fmt"
	"testing"

	"xqgo"
)

func TestSmoke(t *testing.T) {
	doc, err := xqgo.ParseString(`<bib><book year="1994"><title>TCP/IP Illustrated</title><price>65.95</price></book><book year="2000"><title>Data on the Web</title><price>39.95</price></book></bib>`, "bib.xml")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ q, want string }{
		{`1+1`, `2`},
		{`(1,2,3)[2]`, `2`},
		{`for $i in (1 to 3) return $i*$i`, `1 4 9`},
		{`count(/bib/book)`, `2`},
		{`/bib/book[@year = 1994]/title/text()`, `TCP/IP Illustrated`},
		{`for $b in /bib/book where xs:decimal($b/price) < 50 return string($b/title)`, `Data on the Web`},
		{`<r>{for $b in /bib/book return <t>{string($b/title)}</t>}</r>`, `<r><t>TCP/IP Illustrated</t><t>Data on the Web</t></r>`},
		{`some $x in (1,2,3) satisfies $x eq 2`, `true`},
		{`let $x := (1,2,3) return count($x)`, `3`},
		{`string-join(("a","b","c"), "-")`, `a-b-c`},
		{`if (/bib/book[1]/@year < 1995) then "old" else "new"`, `old`},
		{`(//title)[1]/../price/text()`, `65.95`},
	}
	for _, tc := range cases {
		q, err := xqgo.Compile(tc.q, nil)
		if err != nil {
			t.Errorf("compile %q: %v", tc.q, err)
			continue
		}
		got, err := q.EvalString(xqgo.NewContext().WithContextNode(doc))
		if err != nil {
			t.Errorf("eval %q: %v", tc.q, err)
			continue
		}
		if got != tc.want {
			t.Errorf("query %q:\n got  %q\n want %q\n plan %s", tc.q, got, tc.want, q.Plan())
		}
	}
	fmt.Println("smoke done")
}
