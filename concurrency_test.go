package xqgo_test

// Concurrent execution of one compiled *Query — the contract the service
// layer's plan cache depends on. A forced join strategy and
// MemoizeFunctions are both on because they are the options that keep
// per-execution state (index cache, memo table); run with -race to verify
// that state stays confined to each Context.

import (
	"strings"
	"sync"
	"testing"

	"xqgo"
	"xqgo/internal/workload"
)

func TestQueryConcurrentEvalSharedPlan(t *testing.T) {
	doc := xqgo.FromStore(workload.Deep(workload.DeepConfig{
		Nodes: 2000, Names: []string{"a", "b", "c"}, Fanout: 3, Seed: 11,
	}))

	q := xqgo.MustCompile(`
		declare function local:fib($n as xs:integer) as xs:integer {
			if ($n < 2) then $n else local:fib($n - 1) + local:fib($n - 2)
		};
		<out fib="{local:fib(15)}" ab="{count(//a//b)}" bc="{count(//b//c)}"/>`,
		&xqgo.Options{Strategy: xqgo.ForceBinaryJoin, MemoizeFunctions: true})

	want, err := q.EvalString(xqgo.NewContext().WithContextNode(doc))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(want, `fib="610"`) {
		t.Fatalf("reference result = %q", want)
	}

	const goroutines = 32
	const iters = 8

	// Per-goroutine contexts over the same document and plan.
	t.Run("per-goroutine contexts", func(t *testing.T) {
		var wg sync.WaitGroup
		errs := make(chan error, goroutines)
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					got, err := q.EvalString(xqgo.NewContext().WithContextNode(doc))
					if err != nil {
						errs <- err
						return
					}
					if got != want {
						t.Errorf("result diverged: %q != %q", got, want)
						return
					}
				}
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	})

	// One shared Context: memo table and index cache are hit concurrently.
	t.Run("shared context", func(t *testing.T) {
		ctx := xqgo.NewContext().WithContextNode(doc)
		var wg sync.WaitGroup
		errs := make(chan error, goroutines)
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					got, err := q.EvalString(ctx)
					if err != nil {
						errs <- err
						return
					}
					if got != want {
						t.Errorf("result diverged: %q != %q", got, want)
						return
					}
				}
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	})
}
