package xqgo_test

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"xqgo"
)

func TestToSequenceKinds(t *testing.T) {
	now := time.Date(2004, 3, 2, 10, 0, 0, 0, time.UTC)
	cases := []struct {
		name  string
		in    any
		want  []string // lexical forms
		fails bool
	}{
		{name: "nil", in: nil, want: nil},
		{name: "string", in: "hi", want: []string{"hi"}},
		{name: "bool", in: true, want: []string{"true"}},
		{name: "int", in: 42, want: []string{"42"}},
		{name: "int64", in: int64(-7), want: []string{"-7"}},
		{name: "float64", in: 2.5, want: []string{"2.5"}},
		{name: "time", in: now, want: []string{"2004-03-02T10:00:00"}},
		{name: "[]string", in: []string{"a", "b"}, want: []string{"a", "b"}},
		{name: "[]int", in: []int{1, 2}, want: []string{"1", "2"}},
		{name: "[]int64", in: []int64{3, 4, 5}, want: []string{"3", "4", "5"}},
		{name: "[]float64", in: []float64{1.5, -0.25}, want: []string{"1.5", "-0.25"}},
		{name: "[]bool", in: []bool{true, false}, want: []string{"true", "false"}},
		{name: "[]any mixed", in: []any{int64(1), "x", false}, want: []string{"1", "x", "false"}},
		{name: "[]any nested", in: []any{[]int64{1, 2}, []bool{true}}, want: []string{"1", "2", "true"}},
		{name: "unsupported", in: struct{}{}, fails: true},
		{name: "unsupported slice", in: []int32{1}, fails: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seq, err := xqgo.ToSequence(tc.in)
			if tc.fails {
				if err == nil {
					t.Fatalf("ToSequence(%T) succeeded, want error", tc.in)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(seq) != len(tc.want) {
				t.Fatalf("len = %d, want %d", len(seq), len(tc.want))
			}
			for i, it := range seq {
				got, err := xqgo.ItemString(it)
				if err != nil {
					t.Fatal(err)
				}
				if got != tc.want[i] {
					t.Errorf("item %d = %q, want %q", i, got, tc.want[i])
				}
			}
		})
	}
}

// TestToSequenceBindRoundTrip drives the new slice kinds through an actual
// query, the way the service's variable-binding endpoint uses them.
func TestToSequenceBindRoundTrip(t *testing.T) {
	q := xqgo.MustCompile(`
		declare variable $is external;
		declare variable $fs external;
		declare variable $bs external;
		concat(sum($is), "|", sum($fs), "|", count($bs[. = true()]))`, nil)
	out, err := q.EvalString(xqgo.NewContext().
		Bind("is", []int64{1, 2, 3}).
		Bind("fs", []float64{0.5, 0.25}).
		Bind("bs", []bool{true, false, true}))
	if err != nil {
		t.Fatal(err)
	}
	if out != "6|0.75|2" {
		t.Errorf("result = %q, want 6|0.75|2", out)
	}
}

// Regression: AllowFilesystem used to install a fresh document registry,
// silently discarding documents registered beforehand.
func TestAllowFilesystemKeepsRegistrations(t *testing.T) {
	mem := xqgo.MustParseString(`<m><v>registered</v></m>`, "mem.xml")
	onDisk := filepath.Join(t.TempDir(), "disk.xml")
	if err := os.WriteFile(onDisk, []byte(`<d><v>from-disk</v></d>`), 0o644); err != nil {
		t.Fatal(err)
	}

	ctx := xqgo.NewContext().
		RegisterDocument("mem.xml", mem).
		AllowFilesystem()

	// The pre-registered document is still resolvable...
	q := xqgo.MustCompile(`string(doc("mem.xml")/m/v)`, nil)
	out, err := q.EvalString(ctx)
	if err != nil {
		t.Fatalf("registered doc lost after AllowFilesystem: %v", err)
	}
	if out != "registered" {
		t.Errorf("result = %q, want registered", out)
	}

	// ...and the filesystem fallback works on the same context.
	q2 := xqgo.MustCompile(`string(doc("`+onDisk+`")/d/v)`, nil)
	out, err = q2.EvalString(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if out != "from-disk" {
		t.Errorf("result = %q, want from-disk", out)
	}

	// Registration order must not matter either.
	ctx2 := xqgo.NewContext().
		AllowFilesystem().
		RegisterDocument("mem.xml", mem)
	out, err = q.EvalString(ctx2)
	if err != nil {
		t.Fatal(err)
	}
	if out != "registered" {
		t.Errorf("result = %q, want registered", out)
	}

	// Without AllowFilesystem, unregistered URIs still fail.
	if _, err := q2.EvalString(xqgo.NewContext()); err == nil {
		t.Error("filesystem read succeeded without AllowFilesystem")
	}
}

// TestContextInterrupt verifies the cancellation hook aborts a
// long-running evaluation with the hook's error.
func TestContextInterrupt(t *testing.T) {
	q := xqgo.MustCompile(`count(for $i in 1 to 1000000000 return $i)`, nil)
	calls := 0
	wantErr := os.ErrDeadlineExceeded
	ctx := xqgo.NewContext().WithInterrupt(func() error {
		calls++
		if calls > 3 {
			return wantErr
		}
		return nil
	})
	done := make(chan error, 1)
	go func() {
		_, err := q.Eval(ctx)
		done <- err
	}()
	select {
	case err := <-done:
		if err != wantErr {
			t.Errorf("err = %v, want %v", err, wantErr)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("interrupt never fired")
	}
}
