package xqgo_test

import (
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"xqgo"
)

func TestToSequenceKinds(t *testing.T) {
	now := time.Date(2004, 3, 2, 10, 0, 0, 0, time.UTC)
	cases := []struct {
		name  string
		in    any
		want  []string // lexical forms
		fails bool
	}{
		{name: "nil", in: nil, want: nil},
		{name: "string", in: "hi", want: []string{"hi"}},
		{name: "bool", in: true, want: []string{"true"}},
		{name: "int", in: 42, want: []string{"42"}},
		{name: "int64", in: int64(-7), want: []string{"-7"}},
		{name: "float64", in: 2.5, want: []string{"2.5"}},
		{name: "time", in: now, want: []string{"2004-03-02T10:00:00"}},
		{name: "[]string", in: []string{"a", "b"}, want: []string{"a", "b"}},
		{name: "[]int", in: []int{1, 2}, want: []string{"1", "2"}},
		{name: "[]int64", in: []int64{3, 4, 5}, want: []string{"3", "4", "5"}},
		{name: "[]float64", in: []float64{1.5, -0.25}, want: []string{"1.5", "-0.25"}},
		{name: "[]bool", in: []bool{true, false}, want: []string{"true", "false"}},
		{name: "[]any mixed", in: []any{int64(1), "x", false}, want: []string{"1", "x", "false"}},
		{name: "[]any nested", in: []any{[]int64{1, 2}, []bool{true}}, want: []string{"1", "2", "true"}},
		{name: "unsupported", in: struct{}{}, fails: true},
		{name: "unsupported slice", in: []int32{1}, fails: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seq, err := xqgo.ToSequence(tc.in)
			if tc.fails {
				if err == nil {
					t.Fatalf("ToSequence(%T) succeeded, want error", tc.in)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(seq) != len(tc.want) {
				t.Fatalf("len = %d, want %d", len(seq), len(tc.want))
			}
			for i, it := range seq {
				got, err := xqgo.ItemString(it)
				if err != nil {
					t.Fatal(err)
				}
				if got != tc.want[i] {
					t.Errorf("item %d = %q, want %q", i, got, tc.want[i])
				}
			}
		})
	}
}

// TestToSequenceBindRoundTrip drives the new slice kinds through an actual
// query, the way the service's variable-binding endpoint uses them.
func TestToSequenceBindRoundTrip(t *testing.T) {
	q := xqgo.MustCompile(`
		declare variable $is external;
		declare variable $fs external;
		declare variable $bs external;
		concat(sum($is), "|", sum($fs), "|", count($bs[. = true()]))`, nil)
	out, err := q.EvalString(xqgo.NewContext().
		Bind("is", []int64{1, 2, 3}).
		Bind("fs", []float64{0.5, 0.25}).
		Bind("bs", []bool{true, false, true}))
	if err != nil {
		t.Fatal(err)
	}
	if out != "6|0.75|2" {
		t.Errorf("result = %q, want 6|0.75|2", out)
	}
}

// Regression: AllowFilesystem used to install a fresh document registry,
// silently discarding documents registered beforehand.
func TestAllowFilesystemKeepsRegistrations(t *testing.T) {
	mem := xqgo.MustParseString(`<m><v>registered</v></m>`, "mem.xml")
	onDisk := filepath.Join(t.TempDir(), "disk.xml")
	if err := os.WriteFile(onDisk, []byte(`<d><v>from-disk</v></d>`), 0o644); err != nil {
		t.Fatal(err)
	}

	ctx := xqgo.NewContext().
		RegisterDocument("mem.xml", mem).
		AllowFilesystem()

	// The pre-registered document is still resolvable...
	q := xqgo.MustCompile(`string(doc("mem.xml")/m/v)`, nil)
	out, err := q.EvalString(ctx)
	if err != nil {
		t.Fatalf("registered doc lost after AllowFilesystem: %v", err)
	}
	if out != "registered" {
		t.Errorf("result = %q, want registered", out)
	}

	// ...and the filesystem fallback works on the same context.
	q2 := xqgo.MustCompile(`string(doc("`+onDisk+`")/d/v)`, nil)
	out, err = q2.EvalString(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if out != "from-disk" {
		t.Errorf("result = %q, want from-disk", out)
	}

	// Registration order must not matter either.
	ctx2 := xqgo.NewContext().
		AllowFilesystem().
		RegisterDocument("mem.xml", mem)
	out, err = q.EvalString(ctx2)
	if err != nil {
		t.Fatal(err)
	}
	if out != "registered" {
		t.Errorf("result = %q, want registered", out)
	}

	// Without AllowFilesystem, unregistered URIs still fail.
	if _, err := q2.EvalString(xqgo.NewContext()); err == nil {
		t.Error("filesystem read succeeded without AllowFilesystem")
	}
}

// TestContextInterrupt verifies the cancellation hook aborts a
// long-running evaluation with the hook's error.
func TestContextInterrupt(t *testing.T) {
	q := xqgo.MustCompile(`count(for $i in 1 to 1000000000 return $i)`, nil)
	calls := 0
	wantErr := os.ErrDeadlineExceeded
	ctx := xqgo.NewContext().WithInterrupt(func() error {
		calls++
		if calls > 3 {
			return wantErr
		}
		return nil
	})
	done := make(chan error, 1)
	go func() {
		_, err := q.Eval(ctx)
		done <- err
	}()
	select {
	case err := <-done:
		if err != wantErr {
			t.Errorf("err = %v, want %v", err, wantErr)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("interrupt never fired")
	}
}

// TestToSequenceNewKinds covers the scalar and slice conversions added with
// the context-first API: sized ints, unsigned ints with range checking,
// float32, and node/item slices.
func TestToSequenceNewKinds(t *testing.T) {
	doc := xqgo.MustParseString(`<r><a/><b/></r>`, "r.xml")
	root := doc.Root()
	cases := []struct {
		name  string
		in    any
		want  []string
		fails bool
	}{
		{name: "int32", in: int32(-9), want: []string{"-9"}},
		{name: "uint", in: uint(7), want: []string{"7"}},
		{name: "uint64", in: uint64(1 << 40), want: []string{"1099511627776"}},
		{name: "uint64 max-int64", in: uint64(math.MaxInt64), want: []string{"9223372036854775807"}},
		{name: "uint64 overflow", in: uint64(math.MaxInt64) + 1, fails: true},
		{name: "uint overflow", in: uint(math.MaxUint64), fails: true},
		{name: "float32", in: float32(1.5), want: []string{"1.5"}},
		{name: "[]node", in: []xqgo.Node{root, root}, want: nil},
		{name: "[]item", in: []xqgo.Item{root}, want: nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seq, err := xqgo.ToSequence(tc.in)
			if tc.fails {
				if err == nil {
					t.Fatalf("ToSequence(%v) succeeded, want error", tc.in)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if tc.want == nil { // node/item slices: check identity, not lexical form
				in := reflect.ValueOf(tc.in)
				if len(seq) != in.Len() {
					t.Fatalf("len = %d, want %d", len(seq), in.Len())
				}
				for _, it := range seq {
					if !it.IsNode() {
						t.Errorf("item %T is not a node", it)
					}
				}
				return
			}
			if len(seq) != len(tc.want) {
				t.Fatalf("len = %d, want %d", len(seq), len(tc.want))
			}
			for i, it := range seq {
				got, err := xqgo.ItemString(it)
				if err != nil {
					t.Fatal(err)
				}
				if got != tc.want[i] {
					t.Errorf("item %d = %q, want %q", i, got, tc.want[i])
				}
			}
		})
	}
}

// TestBindValue: the error-returning form reports unsupported values instead
// of panicking, and binds reach the query like Bind's.
func TestBindValue(t *testing.T) {
	ctx := xqgo.NewContext()
	if err := ctx.BindValue("n", struct{}{}); err == nil {
		t.Fatal("BindValue accepted an unconvertible value")
	}
	if err := ctx.BindValue("n", 6); err != nil {
		t.Fatal(err)
	}
	q := xqgo.MustCompile(`declare variable $n external; $n * 7`, nil)
	out, err := q.EvalString(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if out != "42" {
		t.Errorf("result = %q, want 42", out)
	}
	// The panicking form still panics, for parity with the old contract.
	defer func() {
		if recover() == nil {
			t.Error("Bind did not panic on an unconvertible value")
		}
	}()
	xqgo.NewContext().Bind("x", struct{}{})
}

// TestEvalContextCancel: a canceled context.Context aborts evaluation — both
// when canceled up front and when canceled mid-flight.
func TestEvalContextCancel(t *testing.T) {
	q := xqgo.MustCompile(`count(for $i in 1 to 1000000000 return $i)`, nil)

	pre, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := q.EvalContext(pre, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled EvalContext returned %v, want context.Canceled", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := q.EvalContext(ctx, xqgo.NewContext())
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancellation never aborted the evaluation")
	}
}

// TestEvalContextKeepsInterruptHook: wiring a context.Context must compose
// with, not replace, a WithInterrupt hook.
func TestEvalContextKeepsInterruptHook(t *testing.T) {
	q := xqgo.MustCompile(`count(for $i in 1 to 100000000 return $i)`, nil)
	wantErr := errors.New("hook fired")
	c := xqgo.NewContext().WithInterrupt(func() error { return wantErr })
	if _, err := q.EvalContext(context.Background(), c); !errors.Is(err, wantErr) {
		t.Errorf("err = %v, want the WithInterrupt hook's error", err)
	}
}

// TestItems exercises the range-over-func form: full iteration, early break
// (which must close the underlying iterator), and error delivery.
func TestItems(t *testing.T) {
	q := xqgo.MustCompile(`for $i in (1 to 4) return $i * $i`, nil)
	var got []string
	for item, err := range q.Items(xqgo.NewContext()) {
		if err != nil {
			t.Fatal(err)
		}
		s, _ := xqgo.ItemString(item)
		got = append(got, s)
	}
	if strings.Join(got, ",") != "1,4,9,16" {
		t.Errorf("items = %v", got)
	}

	// Early break stops the sequence without draining it.
	n := 0
	for _, err := range q.Items(xqgo.NewContext()) {
		if err != nil {
			t.Fatal(err)
		}
		if n++; n == 2 {
			break
		}
	}
	if n != 2 {
		t.Errorf("broke after %d items, want 2", n)
	}

	// A runtime error arrives as the final yield.
	qe := xqgo.MustCompile(`(1, 2, error(QName("urn:t", "boom"), "bang"))`, nil)
	items, errs := 0, 0
	for item, err := range qe.Items(xqgo.NewContext()) {
		if err != nil {
			errs++
			if !strings.Contains(err.Error(), "bang") {
				t.Errorf("err = %v", err)
			}
			continue
		}
		_ = item
		items++
	}
	if items != 2 || errs != 1 {
		t.Errorf("got %d items and %d errors, want 2 and 1", items, errs)
	}
}

// TestIteratorClose: Close ends iteration immediately and is idempotent.
func TestIteratorClose(t *testing.T) {
	q := xqgo.MustCompile(`1 to 1000`, nil)
	it, err := q.Iterator(xqgo.NewContext())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := it.Next(); err != nil || !ok {
		t.Fatalf("first Next = (%v, %v)", ok, err)
	}
	it.Close()
	if _, ok, err := it.Next(); ok || err != nil {
		t.Fatalf("Next after Close = (%v, %v), want exhaustion", ok, err)
	}
	it.Close() // second Close must be a no-op
}

// TestIteratorContextCancel: IteratorContext observes cancellation between
// pulls.
func TestIteratorContextCancel(t *testing.T) {
	q := xqgo.MustCompile(`for $i in 1 to 1000000000 return $i`, nil)
	ctx, cancel := context.WithCancel(context.Background())
	it, err := q.IteratorContext(ctx, xqgo.NewContext())
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	if _, ok, err := it.Next(); err != nil || !ok {
		t.Fatalf("first Next = (%v, %v)", ok, err)
	}
	cancel()
	for i := 0; i < 1<<20; i++ {
		if _, ok, err := it.Next(); err != nil {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			return
		} else if !ok {
			t.Fatal("iterator ended without an error after cancel")
		}
	}
	t.Fatal("cancellation never surfaced")
}
