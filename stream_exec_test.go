package xqgo_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"strings"
	"testing"

	"xqgo"
	"xqgo/internal/workload"
)

const paperQuery = `for $line in /Order/OrderLine
where $line/SellersID eq "1"
return <lineItem>{fn:string($line/Item/ID)}</lineItem>`

func ordersXML(lines int) string {
	return workload.DocToXML(workload.Orders(workload.OrdersConfig{Lines: lines, Sellers: 3, Seed: 1}))
}

// storedExecute is the oracle: regular engine over a materialized document.
func storedExecute(t *testing.T, src, doc string) string {
	t.Helper()
	q := xqgo.MustCompile(src, nil)
	d, err := xqgo.ParseString(doc, "mem:feed")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := q.Execute(xqgo.NewContext().WithContextNode(d), &buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestStreamModeMatchesStoreEngine(t *testing.T) {
	doc := ordersXML(200)
	queries := []struct {
		src  string
		want xqgo.StreamClass
	}{
		{`/Order/OrderLine`, xqgo.StreamFullyStreamable},
		{`/Order/OrderLine/Item/ID`, xqgo.StreamFullyStreamable},
		{`/Order/OrderLine[SellersID = "1"]`, xqgo.StreamBoundedBuffer},
		{paperQuery, xqgo.StreamBoundedBuffer},
		{`count(/Order/OrderLine)`, xqgo.StreamStoreRequired}, // exercises fallback
	}
	for _, c := range queries {
		q := xqgo.MustCompile(c.src, nil)
		if class, reason := q.Streamability(); class != c.want {
			t.Errorf("%s: class %v (%s), want %v", c.src, class, reason, c.want)
			continue
		}
		want := storedExecute(t, c.src, doc)

		prof := q.NewCountersProfile()
		ctx := xqgo.NewContext().
			WithStreamingInput(strings.NewReader(doc), "mem:feed").
			WithStreamMode(true).
			WithProfile(prof)
		var buf bytes.Buffer
		if err := q.Execute(ctx, &buf); err != nil {
			t.Errorf("%s: stream execute: %v", c.src, err)
			continue
		}
		if got := buf.String(); got != want {
			t.Errorf("%s:\n stream: %.200q\n store:  %.200q", c.src, got, want)
		}
		rep := prof.Report()
		if c.want == xqgo.StreamStoreRequired {
			if rep.Counters.StreamFallbacks != 1 {
				t.Errorf("%s: fallbacks = %d, want 1", c.src, rep.Counters.StreamFallbacks)
			}
		} else {
			if rep.Counters.StreamWindows == 0 {
				t.Errorf("%s: no stream windows recorded", c.src)
			}
			if rep.Counters.StreamFallbacks != 0 {
				t.Errorf("%s: unexpected fallback (%d)", c.src, rep.Counters.StreamFallbacks)
			}
		}
	}
}

// trackingReader records how many input bytes have been consumed.
type trackingReader struct {
	r io.Reader
	n int64
}

func (tr *trackingReader) Read(p []byte) (int, error) {
	n, err := tr.r.Read(p)
	tr.n += int64(n)
	return n, err
}

// firstWriteWriter snapshots a counter at the first write.
type firstWriteWriter struct {
	onFirst func()
	wrote   bool
	io.Writer
}

func (fw *firstWriteWriter) Write(p []byte) (int, error) {
	if !fw.wrote && len(p) > 0 {
		fw.wrote = true
		fw.onFirst()
	}
	return fw.Writer.Write(p)
}

// TestStreamModeIsIncremental proves results are emitted before the input
// is fully consumed: the first output byte must appear while most of the
// feed is still unread. This is the deterministic form of the
// time-to-first-byte acceptance criterion (the timed form lives in xqbench).
func TestStreamModeIsIncremental(t *testing.T) {
	doc := ordersXML(5000)
	q := xqgo.MustCompile(`/Order/OrderLine[SellersID = "1"]/Item/ID`, nil)

	tr := &trackingReader{r: strings.NewReader(doc)}
	var consumedAtFirst int64 = -1
	var buf bytes.Buffer
	fw := &firstWriteWriter{Writer: &buf, onFirst: func() { consumedAtFirst = tr.n }}

	ctx := xqgo.NewContext().WithStreamingInput(tr, "mem:feed").WithStreamMode(true)
	if err := q.Execute(ctx, fw); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("no output")
	}
	if consumedAtFirst < 0 {
		t.Fatal("first-write hook never fired")
	}
	if consumedAtFirst > int64(len(doc))/2 {
		t.Fatalf("first output after %d of %d input bytes — not incremental",
			consumedAtFirst, len(doc))
	}
}

func TestSubscriberSinglePassFanOut(t *testing.T) {
	doc := ordersXML(300)

	identity := xqgo.MustCompile(`/Order/OrderLine/Item/ID`, nil)
	filtered := xqgo.MustCompile(`/Order/OrderLine[SellersID = "1"]`, nil)
	stored := xqgo.MustCompile(`count(/Order/OrderLine)`, nil) // falls back

	var ids, lines, counts []string
	collect := func(dst *[]string) func([]byte) error {
		return func(x []byte) error { *dst = append(*dst, string(x)); return nil }
	}

	sub := xqgo.NewSubscriber()
	s1 := sub.Subscribe(identity, collect(&ids))
	s2 := sub.Subscribe(filtered, collect(&lines))
	s3 := sub.Subscribe(stored, collect(&counts))

	if err := sub.Run(context.Background(), strings.NewReader(doc), "mem:feed"); err != nil {
		t.Fatal(err)
	}
	for i, s := range []*xqgo.Subscription{s1, s2, s3} {
		if err := s.Err(); err != nil {
			t.Fatalf("subscription %d: %v", i+1, err)
		}
	}

	if want := storedExecute(t, `count(/Order/OrderLine)`, doc); len(counts) != 1 || counts[0] != want {
		t.Fatalf("fallback sub: %q, want [%q]", counts, want)
	}
	if len(ids) != 300 {
		t.Fatalf("identity sub delivered %d results, want 300", len(ids))
	}
	wantLines := storedExecute(t, `/Order/OrderLine[SellersID = "1"]`, doc)
	if got := strings.Join(lines, ""); got != wantLines {
		t.Fatalf("filtered sub concatenation mismatch:\n got:  %.200q\n want: %.200q", got, wantLines)
	}

	if st := s1.Stats(); st.Class != "fully-streamable" || st.Results != 300 {
		t.Fatalf("s1 stats = %+v", st)
	}
	if st := s2.Stats(); st.Class != "bounded-buffers" || st.PeakBufferBytes == 0 {
		t.Fatalf("s2 stats = %+v", st)
	}
	if st := s3.Stats(); !st.FellBack || st.Results != 1 {
		t.Fatalf("s3 stats = %+v", st)
	}
}

func TestSubscriptionCloseMidFeed(t *testing.T) {
	doc := ordersXML(200)
	q := xqgo.MustCompile(`/Order/OrderLine`, nil)

	sub := xqgo.NewSubscriber()
	var n int
	var handle *xqgo.Subscription
	handle = sub.Subscribe(q, func([]byte) error {
		n++
		if n == 5 {
			handle.Close()
		}
		return nil
	})
	if err := sub.Run(context.Background(), strings.NewReader(doc), "mem:feed"); err != nil {
		t.Fatal(err)
	}
	if n < 5 || n > 6 {
		t.Fatalf("delivered %d results after Close at 5", n)
	}
	if err := handle.Err(); err != nil {
		t.Fatalf("close must not record an error, got %v", err)
	}
}

func TestSubscriberDeliveryErrorIsolated(t *testing.T) {
	doc := ordersXML(50)
	qa := xqgo.MustCompile(`/Order/OrderLine/Item/ID`, nil)
	qb := xqgo.MustCompile(`/Order/OrderLine`, nil)

	boom := fmt.Errorf("client went away")
	sub := xqgo.NewSubscriber()
	bad := sub.Subscribe(qa, func([]byte) error { return boom })
	var n int
	good := sub.Subscribe(qb, func([]byte) error { n++; return nil })

	if err := sub.Run(context.Background(), strings.NewReader(doc), "mem:feed"); err != nil {
		t.Fatal(err)
	}
	if bad.Err() == nil {
		t.Fatal("failing subscription should record its error")
	}
	if good.Err() != nil || n != 50 {
		t.Fatalf("healthy subscription: err=%v results=%d, want nil/50", good.Err(), n)
	}
}
