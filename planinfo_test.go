package xqgo_test

import (
	"fmt"
	"strings"
	"testing"

	"xqgo"
	"xqgo/internal/workload"
)

func renderPlan(ops []*xqgo.PlanOperator, indent int, sb *strings.Builder) {
	for _, op := range ops {
		fmt.Fprintf(sb, "%s%d:%s", strings.Repeat("  ", indent), op.ID, op.Kind)
		if op.Strategy != "" {
			fmt.Fprintf(sb, "[%s]", op.Strategy)
		}
		sb.WriteByte('\n')
		renderPlan(op.Children, indent+1, sb)
	}
}

func planShape(q *xqgo.Query) string {
	var sb strings.Builder
	renderPlan(q.PlanInfo().Operators, 0, &sb)
	return sb.String()
}

// TestPlanInfoGolden pins the structured plan for a representative query:
// stable operator ids, the operator tree shape, and the per-path strategy
// annotation. A failure here means the public introspection surface moved —
// update the golden only for a deliberate plan change.
func TestPlanInfoGolden(t *testing.T) {
	q := xqgo.MustCompile(
		`for $x in //a//b where count($x/c) > 0 return <hit>{count(//a//b//c)}</hit>`,
		nil)
	info := q.PlanInfo()
	if info.Strategy != "auto" {
		t.Errorf("plan strategy = %q, want auto", info.Strategy)
	}
	if info.Text != q.Plan() {
		t.Errorf("PlanInfo().Text diverges from deprecated Plan():\n%q\nvs\n%q",
			info.Text, q.Plan())
	}
	// Join-eligible chains (//a//b and //a//b//c) are policy "auto"; their
	// nested per-step sub-paths and the non-eligible $x/c are "navigation".
	got := planShape(q)
	want := strings.TrimLeft(`
13:flwor
  3:path[auto]
    2:path[navigation]
      1:path[navigation]
        0:path[navigation]
  5:call fn:count
    4:path[navigation]
  12:call fn:count
    11:path[auto]
      10:path[navigation]
        9:path[auto]
          8:path[navigation]
            7:path[navigation]
              6:path[navigation]
`, "\n")
	if got != want {
		t.Errorf("plan shape mismatch:\ngot:\n%swant:\n%s", got, want)
	}
}

// Forced strategies show up on the plan-level field and on each
// join-eligible path operator.
func TestPlanInfoStrategyAnnotation(t *testing.T) {
	for _, c := range []struct {
		strategy xqgo.Strategy
		want     string
	}{
		{xqgo.StrategyAuto, "auto"},
		{xqgo.ForceNavigation, "navigation"},
		{xqgo.ForceBinaryJoin, "binary-join"},
		{xqgo.ForceTwig, "twig-join"},
	} {
		q := xqgo.MustCompile(`count(//a//b)`, &xqgo.Options{Strategy: c.strategy})
		info := q.PlanInfo()
		if info.Strategy != c.want {
			t.Errorf("%v: plan strategy = %q, want %q", c.strategy, info.Strategy, c.want)
		}
		var pathOps []*xqgo.PlanOperator
		var walk func(ops []*xqgo.PlanOperator)
		walk = func(ops []*xqgo.PlanOperator) {
			for _, op := range ops {
				if op.Kind == "path" {
					pathOps = append(pathOps, op)
				}
				walk(op.Children)
			}
		}
		walk(info.Operators)
		if len(pathOps) == 0 {
			t.Fatalf("%v: no path operator in plan", c.strategy)
		}
		// The outermost chain is join-eligible and must carry the policy;
		// nested per-step sub-paths are never join-shaped and stay
		// "navigation".
		carriers := 0
		for _, op := range pathOps {
			switch op.Strategy {
			case c.want:
				carriers++
			case "navigation": // non-eligible sub-path
			default:
				t.Errorf("%v: path op %d has stray strategy %q", c.strategy, op.ID, op.Strategy)
			}
		}
		if carriers == 0 {
			t.Errorf("%v: no path op carries policy %q", c.strategy, c.want)
		}
	}
}

// Operator ids in PlanInfo are the same stable ids profile rows carry: every
// profiled operator must be addressable in the plan tree, and the profile's
// run-time strategy must agree with what the plan promised for forced
// strategies.
func TestPlanInfoIDsMatchProfile(t *testing.T) {
	doc := xqgo.FromStore(workload.Deep(workload.DeepConfig{Nodes: 3000, Seed: 6}))
	q := xqgo.MustCompile(`count(//a//b)`, &xqgo.Options{Strategy: xqgo.ForceTwig})
	byID := map[int]*xqgo.PlanOperator{}
	var walk func(ops []*xqgo.PlanOperator)
	walk = func(ops []*xqgo.PlanOperator) {
		for _, op := range ops {
			byID[op.ID] = op
			walk(op.Children)
		}
	}
	walk(q.PlanInfo().Operators)

	prof := q.NewCountersProfile()
	ctx := xqgo.NewContext().WithContextNode(doc).WithProfile(prof)
	if _, err := q.EvalString(ctx); err != nil {
		t.Fatal(err)
	}
	for _, row := range prof.Report().Operators {
		op, ok := byID[row.ID]
		if !ok {
			t.Errorf("profile op %d (%s) missing from PlanInfo tree", row.ID, row.Kind)
			continue
		}
		if op.Kind != row.Kind {
			t.Errorf("op %d kind: plan %q vs profile %q", row.ID, op.Kind, row.Kind)
		}
		if row.Kind == "path" && row.Strategy != "" && row.Strategy != "twig-join" {
			t.Errorf("op %d ran with strategy %q despite ForceTwig", row.ID, row.Strategy)
		}
	}
}
