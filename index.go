package xqgo

import (
	"xqgo/internal/structjoin"
	"xqgo/internal/xdm"
)

// Index is a structural-join index over one document: element/attribute
// name posting lists with region labels. It answers tree-pattern (twig)
// queries with the stack-based join algorithms instead of navigation —
// the "Structural Joins" / "Holistic twig joins" machinery the paper's
// evaluation-algorithms survey covers.
type Index struct {
	idx *structjoin.Index
	doc *Document
}

// BuildIndex scans the document once and builds its name index.
func (d *Document) BuildIndex() *Index {
	return &Index{idx: structjoin.BuildIndex(d.doc), doc: d}
}

// JoinAlgorithm selects a binary structural-join implementation.
type JoinAlgorithm int

const (
	// StackTree is the stack-based merge join (Stack-Tree-Desc): one pass
	// over both posting lists. Default.
	StackTree JoinAlgorithm = iota
	// TreeMerge is the mergesort-style baseline without a stack.
	TreeMerge
	// Navigation evaluates the join by walking the tree (no index).
	Navigation
)

// Descendants returns the distinct descendant elements named desc that have
// an ancestor element named anc, in document order.
func (x *Index) Descendants(anc, desc string, alg JoinAlgorithm) []Node {
	return x.join(anc, desc, false, alg)
}

// Children returns the distinct child elements named child whose parent
// element is named parent, in document order.
func (x *Index) Children(parent, child string, alg JoinAlgorithm) []Node {
	return x.join(parent, child, true, alg)
}

func (x *Index) join(anc, desc string, parentOnly bool, alg JoinAlgorithm) []Node {
	var pairs []structjoin.Pair
	switch alg {
	case TreeMerge:
		pairs = structjoin.TreeMergeDesc(
			x.idx.Elements(xdm.LocalName(anc)), x.idx.Elements(xdm.LocalName(desc)), parentOnly)
	case Navigation:
		pairs = structjoin.NavigationDesc(x.doc.doc,
			xdm.LocalName(anc), xdm.LocalName(desc), parentOnly)
	default:
		pairs = structjoin.StackTreeDesc(
			x.idx.Elements(xdm.LocalName(anc)), x.idx.Elements(xdm.LocalName(desc)), parentOnly)
	}
	postings := structjoin.DistinctDescendants(pairs)
	out := make([]Node, len(postings))
	for i, p := range postings {
		out[i] = x.doc.doc.Node(p.ID)
	}
	return out
}

// TwigStats reports the work a holistic twig join performed.
type TwigStats = structjoin.TwigStats

// CountTwig runs the holistic TwigStack join for a twig pattern in the
// compact syntax "a[b//c]//d" and returns its statistics. The path-solution
// count equals the number of root-to-leaf embeddings.
func (x *Index) CountTwig(pattern string) (TwigStats, error) {
	tw, err := structjoin.ParseTwig(pattern)
	if err != nil {
		return TwigStats{}, err
	}
	return structjoin.TwigStack(tw, x.idx), nil
}

// CountTwigNavigation counts full twig embeddings by tree navigation (the
// index-free ground truth).
func (x *Index) CountTwigNavigation(pattern string) (int64, error) {
	tw, err := structjoin.ParseTwig(pattern)
	if err != nil {
		return 0, err
	}
	return structjoin.NavTwigCount(tw, x.doc.doc), nil
}
