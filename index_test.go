package xqgo_test

import (
	"testing"

	"xqgo"
	"xqgo/internal/workload"
)

func TestIndexJoinsMatchEngine(t *testing.T) {
	doc := xqgo.FromStore(workload.Deep(workload.DeepConfig{Nodes: 2000, Seed: 5}))
	idx := doc.BuildIndex()

	// The structural join must return exactly what the query engine's
	// //a//b path returns.
	engine := xqgo.MustCompile(`//a//b`, nil)
	want, err := engine.Eval(xqgo.NewContext().WithContextNode(doc))
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []xqgo.JoinAlgorithm{xqgo.StackTree, xqgo.TreeMerge, xqgo.Navigation} {
		got := idx.Descendants("a", "b", alg)
		if len(got) != len(want) {
			t.Fatalf("alg %v: %d nodes, engine says %d", alg, len(got), len(want))
		}
		for i := range got {
			if !got[i].SameNode(want[i].(xqgo.Node)) {
				t.Fatalf("alg %v: node %d differs", alg, i)
			}
		}
	}

	// Child joins match //a/b.
	engine2 := xqgo.MustCompile(`//a/b`, nil)
	want2, err := engine2.Eval(xqgo.NewContext().WithContextNode(doc))
	if err != nil {
		t.Fatal(err)
	}
	got2 := idx.Children("a", "b", xqgo.StackTree)
	if len(got2) != len(want2) {
		t.Fatalf("children join: %d vs engine %d", len(got2), len(want2))
	}
}

func TestIndexTwigCounts(t *testing.T) {
	doc := xqgo.FromStore(workload.Deep(workload.DeepConfig{Nodes: 2000, Seed: 5}))
	idx := doc.BuildIndex()
	stats, err := idx.CountTwig("a//b")
	if err != nil {
		t.Fatal(err)
	}
	nav, err := idx.CountTwigNavigation("a//b")
	if err != nil {
		t.Fatal(err)
	}
	if stats.PathSolutions != nav {
		t.Errorf("holistic %d != navigation %d", stats.PathSolutions, nav)
	}
	if _, err := idx.CountTwig("["); err == nil {
		t.Error("bad pattern must fail")
	}
}
