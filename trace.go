package xqgo

import (
	"time"

	"xqgo/internal/trace"
)

// Request tracing: a Trace attached to a Context collects one span per
// pipeline stage of each execution — ingestion, projection, optimizer
// rewrites, per-operator execution (with observed vs. estimated cardinality),
// streaming windows — under a single "execute" span. The engine's hot path is
// never touched: apart from the live window spans the streaming evaluator
// records, every execution-stage span is synthesized after the run from the
// attached Profile's counters and the compile-time rewrite trace, so tracing
// costs one extra report snapshot per execution and nothing per item.
type (
	// Trace is one request's span collection (see internal/trace). Create
	// with NewTrace or adopt an upstream context with TraceFromHeader.
	Trace = trace.Trace
	// TraceSpan is one timed stage of a Trace.
	TraceSpan = trace.Span
	// TraceData is the JSON-ready snapshot Trace.Finish returns.
	TraceData = trace.Data
)

// NewTrace creates an empty trace with a fresh random W3C trace id.
func NewTrace() *Trace { return trace.New() }

// TraceFromHeader adopts an incoming W3C traceparent header value,
// continuing the caller's trace id. ok is false for malformed values; fall
// back to NewTrace.
func TraceFromHeader(traceparent string) (*Trace, bool) {
	return trace.FromTraceparent(traceparent)
}

// WithTrace attaches a trace to this context: each subsequent execution adds
// its span tree. Pair with WithProfile — operator, ingestion and projection
// spans are synthesized from the profile's counters, so without one only the
// execute, rewrite and window spans appear. Pass nil to detach.
func (c *Context) WithTrace(t *Trace) *Context {
	c.dyn.Trace = t
	return c
}

// Per-stage caps on synthesized spans, small enough that one execution's
// stages plus the streaming evaluator's live window spans fit comfortably
// inside the trace's overall budget (trace.DefaultMaxSpans).
const (
	maxRewriteSpans = 32
	maxPathAttrs    = 16
)

// traced brackets one execution with an "execute" span and post-run span
// synthesis. With no trace attached it is one nil check.
func (q *Query) traced(c *Context, fn func() error) error {
	tr := c.dyn.Trace
	if tr == nil {
		return fn()
	}
	span := tr.StartSpan("execute", c.dyn.TraceSpan)
	prev := c.dyn.TraceSpan
	c.dyn.TraceSpan = span
	start := time.Now()
	err := fn()
	c.dyn.TraceSpan = prev
	q.synthesizeSpans(tr, span, c.dyn.Prof, start, err)
	span.End()
	return err
}

// synthesizeSpans renders the execution's stages as spans under exec:
// optimizer rewrites (compile-time, zero duration at the execution start),
// the static projection decision, ingestion totals, per-operator rows with
// observed vs. estimated cardinality, and a streaming-window summary. Apart
// from the operator rows' inclusive times (timed profiles only) the
// synthesized spans carry their information in attributes, not durations.
func (q *Query) synthesizeSpans(tr *Trace, exec *TraceSpan, prof *Profile, start time.Time, err error) {
	if err != nil {
		exec.SetAttr("error", err.Error())
	}

	if events := q.RewriteTrace(); len(events) > 0 {
		opt := tr.AddSpan("optimize", exec, start, start,
			trace.Attr{Key: "ruleFires", Value: q.RuleFires()})
		for i, ev := range events {
			if i == maxRewriteSpans {
				opt.SetAttr("rewritesOmitted", len(events)-maxRewriteSpans)
				break
			}
			tr.AddSpan("rewrite:"+ev.Rule, opt, start, start,
				trace.Attr{Key: "before", Value: ev.Before},
				trace.Attr{Key: "after", Value: ev.After})
		}
	}

	proj := q.ro.Projection
	pspan := tr.AddSpan("projection", exec, start, start,
		trace.Attr{Key: "projectable", Value: proj.Projectable()})
	if proj != nil && !proj.KeepAll {
		paths := make([]string, 0, min(len(proj.List), maxPathAttrs))
		for i, p := range proj.List {
			if i == maxPathAttrs {
				pspan.SetAttr("pathsOmitted", len(proj.List)-maxPathAttrs)
				break
			}
			paths = append(paths, p.String())
		}
		pspan.SetAttr("paths", paths)
	}

	if prof == nil {
		exec.SetAttr("profile", "off")
		return
	}
	rep := prof.Report()
	c := rep.Counters
	pspan.SetAttr("nodesKept", c.DocNodesBuilt).SetAttr("nodesSkipped", c.NodesSkipped)

	tr.AddSpan("ingest", exec, start, start,
		trace.Attr{Key: "xmlTokens", Value: c.XMLTokens},
		trace.Attr{Key: "nodesBuilt", Value: c.DocNodesBuilt},
		trace.Attr{Key: "nodesSkipped", Value: c.NodesSkipped},
		trace.Attr{Key: "bytesParsedOnDemand", Value: c.BytesParsedOnDemand})

	for _, op := range rep.Operators {
		end := start
		if rep.Timed {
			end = start.Add(time.Duration(op.Nanos))
		}
		tr.AddSpan("op:"+op.Kind, exec, start, end,
			trace.Attr{Key: "detail", Value: op.Detail},
			trace.Attr{Key: "line", Value: op.Line},
			trace.Attr{Key: "col", Value: op.Col},
			trace.Attr{Key: "starts", Value: op.Starts},
			trace.Attr{Key: "items", Value: op.Items},
			trace.Attr{Key: "estItems", Value: op.EstItems})
	}

	if c.StreamWindows > 0 || c.StreamFallbacks > 0 {
		tr.AddSpan("windows-summary", exec, start, start,
			trace.Attr{Key: "windows", Value: c.StreamWindows},
			trace.Attr{Key: "results", Value: c.StreamResults},
			trace.Attr{Key: "peakBufferBytes", Value: c.StreamBufferPeakBytes},
			trace.Attr{Key: "fallbacks", Value: c.StreamFallbacks})
	}
}
